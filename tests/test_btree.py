"""Tests for the B+-tree baseline (repro.btree)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree


class TestBasics:
    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=3)

    def test_empty(self):
        t = BPlusTree(fanout=8)
        assert len(t) == 0
        assert t.get(1) is None
        assert 1 not in t
        assert t.scan(0, 10) == []
        assert not t.delete(1)

    def test_insert_get_update(self):
        t = BPlusTree(fanout=8)
        t.insert(5, "a")
        assert t.get(5) == "a"
        t.insert(5, "b")  # in-place update (the paper's modification)
        assert t.get(5) == "b"
        assert len(t) == 1

    def test_many_inserts(self, rng):
        t = BPlusTree(fanout=8)
        keys = rng.sample(range(10**9), 5000)
        for k in keys:
            t.insert(k, k)
        t.check_invariants()
        assert len(t) == len(keys)
        assert t.depth() > 1
        for k in keys[::7]:
            assert t.get(k) == k


class TestScan:
    def test_scan_matches_reference(self, rng):
        t = BPlusTree(fanout=16)
        keys = rng.sample(range(10**9), 3000)
        for k in keys:
            t.insert(k, k)
        ref = sorted(keys)
        assert [k for k, _ in t.scan(ref[500], 100)] == ref[500:600]
        assert [k for k, _ in t.scan(0, 10)] == ref[:10]
        assert [k for k, _ in t.items()] == ref

    def test_scan_beyond_end(self):
        t = BPlusTree(fanout=8)
        t.insert(1, 1)
        assert t.scan(2, 10) == []


class TestDelete:
    def test_delete_with_rebalance(self, rng):
        t = BPlusTree(fanout=8)
        keys = rng.sample(range(10**9), 4000)
        for k in keys:
            t.insert(k, k)
        victims = keys[:3000]
        for k in victims:
            assert t.delete(k)
        t.check_invariants()
        survivors = sorted(set(keys) - set(victims))
        assert [k for k, _ in t.items()] == survivors

    def test_delete_to_empty_and_reuse(self, rng):
        t = BPlusTree(fanout=8)
        keys = rng.sample(range(10**6), 1000)
        for k in keys:
            t.insert(k, k)
        for k in keys:
            assert t.delete(k)
        t.check_invariants()
        assert len(t) == 0
        t.insert(42, "back")
        assert t.get(42) == "back"

    def test_delete_missing(self):
        t = BPlusTree(fanout=8)
        t.insert(1, 1)
        assert not t.delete(2)


class TestIntrospection:
    def test_node_count_grows(self):
        t = BPlusTree(fanout=8)
        assert t.node_count() == 1
        for k in range(100):
            t.insert(k, k)
        assert t.node_count() > 1

    def test_fanout_bounds_leaf_size(self):
        t = BPlusTree(fanout=8)
        for k in range(1000):
            t.insert(k, k)
        t.check_invariants()  # includes per-node occupancy checks


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(0, 500),
        ),
        max_size=400,
    )
)
@settings(max_examples=100, deadline=None)
def test_btree_matches_dict_model(ops):
    t = BPlusTree(fanout=4)
    model = {}
    for op, key in ops:
        if op == "insert":
            t.insert(key, key * 2)
            model[key] = key * 2
        elif op == "delete":
            assert t.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert t.get(key) == model.get(key)
    t.check_invariants()
    assert [k for k, _ in t.items()] == sorted(model)
