"""Tests for the B+-tree baseline (repro.btree)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree


class TestBasics:
    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=3)

    def test_empty(self):
        t = BPlusTree(fanout=8)
        assert len(t) == 0
        assert t.get(1) is None
        assert 1 not in t
        assert t.scan(0, 10) == []
        assert not t.delete(1)

    def test_insert_get_update(self):
        t = BPlusTree(fanout=8)
        t.insert(5, "a")
        assert t.get(5) == "a"
        t.insert(5, "b")  # in-place update (the paper's modification)
        assert t.get(5) == "b"
        assert len(t) == 1

    def test_many_inserts(self, rng):
        t = BPlusTree(fanout=8)
        keys = rng.sample(range(10**9), 5000)
        for k in keys:
            t.insert(k, k)
        t.check_invariants()
        assert len(t) == len(keys)
        assert t.depth() > 1
        for k in keys[::7]:
            assert t.get(k) == k


class TestScan:
    def test_scan_matches_reference(self, rng):
        t = BPlusTree(fanout=16)
        keys = rng.sample(range(10**9), 3000)
        for k in keys:
            t.insert(k, k)
        ref = sorted(keys)
        assert [k for k, _ in t.scan(ref[500], 100)] == ref[500:600]
        assert [k for k, _ in t.scan(0, 10)] == ref[:10]
        assert [k for k, _ in t.items()] == ref

    def test_scan_beyond_end(self):
        t = BPlusTree(fanout=8)
        t.insert(1, 1)
        assert t.scan(2, 10) == []


class TestDelete:
    def test_delete_with_rebalance(self, rng):
        t = BPlusTree(fanout=8)
        keys = rng.sample(range(10**9), 4000)
        for k in keys:
            t.insert(k, k)
        victims = keys[:3000]
        for k in victims:
            assert t.delete(k)
        t.check_invariants()
        survivors = sorted(set(keys) - set(victims))
        assert [k for k, _ in t.items()] == survivors

    def test_delete_to_empty_and_reuse(self, rng):
        t = BPlusTree(fanout=8)
        keys = rng.sample(range(10**6), 1000)
        for k in keys:
            t.insert(k, k)
        for k in keys:
            assert t.delete(k)
        t.check_invariants()
        assert len(t) == 0
        t.insert(42, "back")
        assert t.get(42) == "back"

    def test_delete_missing(self):
        t = BPlusTree(fanout=8)
        t.insert(1, 1)
        assert not t.delete(2)


class TestIntrospection:
    def test_node_count_grows(self):
        t = BPlusTree(fanout=8)
        assert t.node_count() == 1
        for k in range(100):
            t.insert(k, k)
        assert t.node_count() > 1

    def test_fanout_bounds_leaf_size(self):
        t = BPlusTree(fanout=8)
        for k in range(1000):
            t.insert(k, k)
        t.check_invariants()  # includes per-node occupancy checks


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(0, 500),
        ),
        max_size=400,
    )
)
@settings(max_examples=100, deadline=None)
def test_btree_matches_dict_model(ops):
    t = BPlusTree(fanout=4)
    model = {}
    for op, key in ops:
        if op == "insert":
            t.insert(key, key * 2)
            model[key] = key * 2
        elif op == "delete":
            assert t.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert t.get(key) == model.get(key)
    t.check_invariants()
    assert [k for k, _ in t.items()] == sorted(model)


class TestBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 5, 1000])
    def test_equivalent_to_inserts(self, rng, n):
        keys = rng.sample(range(10**9), n)
        bulk, ref = BPlusTree(fanout=8), BPlusTree(fanout=8)
        bulk.bulk_load(keys, [k * 2 for k in keys])
        for k in keys:
            ref.insert(k, k * 2)
        bulk.check_invariants()
        assert list(bulk.items()) == list(ref.items())
        for k in keys[:100]:
            assert bulk.get(k) == k * 2
        assert bulk.get(10**9 + 1) is None

    def test_duplicates_last_wins(self):
        t = BPlusTree(fanout=4)
        t.bulk_load([3, 1, 3, 2, 3], ["a", "b", "c", "d", "e"])
        assert len(t) == 3
        assert t.get(3) == "e"
        t.check_invariants()

    def test_non_empty_falls_back_to_inserts(self):
        t = BPlusTree(fanout=4)
        t.insert(100, "x")
        t.bulk_load([1, 2, 3], ["a", "b", "c"])
        t.check_invariants()
        assert [k for k, _ in t.items()] == [1, 2, 3, 100]

    def test_loaded_tree_supports_mutation(self, rng):
        keys = rng.sample(range(10**9), 2000)
        t = BPlusTree(fanout=16)
        t.bulk_load(keys[:1000], keys[:1000])
        for k in keys[1000:]:
            t.insert(k, k)
        for k in keys[:500]:
            assert t.delete(k)
        t.check_invariants()
        assert sorted(keys[500:]) == [k for k, _ in t.items()]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=4).bulk_load([1, 2], ["a"])
