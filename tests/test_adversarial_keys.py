"""Adversarial key-order generators and the string prefix encoder.

The generators feed the drift gauntlet (benchmarks/bench_gauntlet.py)
and the maintenance tests, so their contracts -- dtype, uniqueness,
determinism, and the specific adversarial shape each name promises --
are pinned here.  The string encoder's order-preservation and
round-trip laws are checked property-style with hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    ADVERSARIAL_NAMES,
    adversarial,
    interleaved_runs,
    reverse_sorted,
    shifting_hotspot,
    strkeys,
)


@pytest.mark.parametrize("name", ADVERSARIAL_NAMES)
def test_generator_contract(name):
    a = adversarial(name, 4000, seed=11)
    assert a.dtype == np.uint64
    assert a.shape == (4000,)
    assert len(np.unique(a)) == 4000
    # Deterministic per seed, different across seeds.
    assert np.array_equal(a, adversarial(name, 4000, seed=11))
    assert not np.array_equal(a, adversarial(name, 4000, seed=12))


def test_reverse_sorted_is_strictly_descending():
    a = reverse_sorted(2000, seed=1)
    assert np.all(a[:-1] > a[1:])


def test_interleaved_runs_alternate_regions():
    a = interleaved_runs(1024, seed=1, n_runs=4, chunk=32)
    # Every chunk is a dense ascending run...
    for i in range(0, 1024, 32):
        chunk = a[i : i + 32]
        assert np.all(np.diff(chunk) == 1)
    # ...and consecutive chunks come from far-apart regions.
    starts = a[::32]
    assert np.all(np.abs(np.diff(starts.astype(np.int64))) > 1 << 40)


def test_shifting_hotspot_phases_are_narrow_and_disjoint():
    n, phases = 8000, 8
    a = shifting_hotspot(n, seed=5, n_phases=phases)
    per = n // phases
    span = float(2**63 - 1)
    widths = []
    for p in range(phases):
        part = a[p * per : (p + 1) * per]
        widths.append((part.max() - part.min()) / span)
    # Each phase stays inside a narrow window...
    assert max(widths) < 0.02
    # ...but the union of phases covers far more than one window.
    assert (a.max() - a.min()) / span > 5 * max(widths)


def test_adversarial_unknown_name():
    with pytest.raises(ValueError, match="unknown adversarial order"):
        adversarial("nope", 10)


# -- string prefix encoder ---------------------------------------------

text = st.text(
    alphabet=st.characters(blacklist_characters="\x00", max_codepoint=0x2FF),
    min_size=0,
    max_size=24,
)


@given(text, text)
@settings(max_examples=200, deadline=None)
def test_encode_is_monotone_in_byte_order(a, b):
    ea, eb = strkeys.encode(a), strkeys.encode(b)
    ba, bb = a.encode("utf-8"), b.encode("utf-8")
    if ba <= bb:
        assert ea <= eb
    else:
        assert ea >= eb


@given(text)
@settings(max_examples=200, deadline=None)
def test_round_trip_recovers_retained_prefix(s):
    for width in (2, 4, 8):
        key = strkeys.encode(s, width)
        assert 0 <= key < 1 << (8 * width)
        back = strkeys.decode(key, width)
        assert back.encode("utf-8", errors="surrogateescape") == (
            s.encode("utf-8")[:width].rstrip(b"\x00")
        )
        # Strings that fit entirely round-trip exactly.
        if len(s.encode("utf-8")) <= width and not s.encode(
            "utf-8"
        ).endswith(b"\x00"):
            assert back == s


@given(st.lists(text, min_size=0, max_size=30))
@settings(max_examples=100, deadline=None)
def test_batch_encoding_never_inverts_order(strings):
    assert strkeys.sort_check(strings)
    enc = strkeys.encode_keys(strings)
    assert enc.dtype == np.uint64
    assert enc.shape == (len(strings),)


def test_encoder_rejects_nul_and_bad_width():
    with pytest.raises(ValueError, match="NUL"):
        strkeys.encode("a\x00b")
    with pytest.raises(ValueError):
        strkeys.encode("abc", width=9)
    with pytest.raises(ValueError):
        strkeys.decode(1 << 16, width=2)
    assert strkeys.prefix_width(32) == 4
    with pytest.raises(ValueError):
        strkeys.prefix_width(4)


def test_encoded_keys_index_round_trip(small_config):
    """Encoded string keys drive a real index: scans come back in
    lexicographic (byte) order of the retained prefixes."""
    from repro.core import DyTIS

    width = strkeys.prefix_width(small_config.key_bits)
    words = sorted(
        {"ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen", "owl"}
    )
    d = DyTIS(small_config)
    for w in words:
        d.insert(strkeys.encode(w, width), w)
    got = [v for _, v in d.items()]
    assert got == sorted(words, key=lambda w: w.encode("utf-8"))
    for w in words:
        assert d.get(strkeys.encode(w, width)) == w
