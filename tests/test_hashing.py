"""Tests for the hash-index baselines (repro.hashing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import CCEH, ExtendibleHashing, pseudo_key


def test_pseudo_key_is_deterministic_and_mixing():
    assert pseudo_key(1) == pseudo_key(1)
    assert pseudo_key(1) != pseudo_key(2)
    # Consecutive keys should differ in their MSBs (directory bits).
    msbs = {pseudo_key(i) >> 56 for i in range(100)}
    assert len(msbs) > 50


@pytest.mark.parametrize(
    "make",
    [
        lambda: ExtendibleHashing(bucket_capacity=8),
        lambda: CCEH(bucket_capacity=4, segment_bits=4),
    ],
    ids=["EH", "CCEH"],
)
class TestHashIndexes:
    def test_empty(self, make):
        h = make()
        assert len(h) == 0
        assert h.get(1) is None
        assert not h.delete(1)

    def test_roundtrip(self, make, rng):
        h = make()
        keys = rng.sample(range(2**62), 5000)
        for i, k in enumerate(keys):
            h.insert(k, i)
        h.check_invariants()
        assert len(h) == len(keys)
        for i, k in enumerate(keys):
            assert h.get(k) == i

    def test_update_in_place(self, make):
        h = make()
        h.insert(7, "a")
        h.insert(7, "b")
        assert h.get(7) == "b"
        assert len(h) == 1

    def test_delete(self, make, rng):
        h = make()
        keys = rng.sample(range(2**62), 2000)
        for k in keys:
            h.insert(k, k)
        for k in keys[:1000]:
            assert h.delete(k)
        assert len(h) == 1000
        h.check_invariants()
        assert h.get(keys[0]) is None
        assert h.get(keys[1500]) == keys[1500]

    def test_items_complete(self, make, rng):
        h = make()
        keys = rng.sample(range(2**62), 1000)
        for k in keys:
            h.insert(k, k)
        assert sorted(k for k, _ in h.items()) == sorted(keys)

    def test_contains(self, make):
        h = make()
        h.insert(3, 3)
        assert 3 in h
        assert 4 not in h

    def test_load_factor_reasonable(self, make, rng):
        h = make()
        for k in rng.sample(range(2**62), 5000):
            h.insert(k, k)
        assert 0.1 < h.load_factor() <= 1.0


class TestExtendibleSpecifics:
    def test_directory_doubles(self, rng):
        h = ExtendibleHashing(bucket_capacity=4, initial_depth=1)
        for k in rng.sample(range(2**62), 1000):
            h.insert(k, k)
        assert h.double_count > 0
        assert h.directory_size() == 2**h.global_depth
        assert h.bucket_count() <= h.directory_size()

    def test_splits_counted(self, rng):
        h = ExtendibleHashing(bucket_capacity=4)
        for k in rng.sample(range(2**62), 500):
            h.insert(k, k)
        assert h.split_count > 0


class TestCCEHSpecifics:
    def test_segments_reduce_doubling(self, rng):
        """CCEH's segment layer makes directory doubling far rarer."""
        keys = rng.sample(range(2**62), 5000)
        eh = ExtendibleHashing(bucket_capacity=4)
        cceh = CCEH(bucket_capacity=4, segment_bits=4)
        for k in keys:
            eh.insert(k, k)
            cceh.insert(k, k)
        assert cceh.double_count < eh.double_count

    def test_segment_bits_validation(self):
        with pytest.raises(ValueError):
            CCEH(segment_bits=0)

    def test_segment_count(self, rng):
        h = CCEH(bucket_capacity=4, segment_bits=4)
        for k in rng.sample(range(2**62), 2000):
            h.insert(k, k)
        assert h.segment_count() > 1


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(0, 300),
        ),
        max_size=300,
    )
)
@settings(max_examples=75, deadline=None)
def test_cceh_matches_dict_model(ops):
    h = CCEH(bucket_capacity=2, segment_bits=2)
    model = {}
    for op, key in ops:
        if op == "insert":
            h.insert(key, key + 1)
            model[key] = key + 1
        elif op == "delete":
            assert h.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert h.get(key) == model.get(key)
    h.check_invariants()
    assert len(h) == len(model)
