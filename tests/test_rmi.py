"""Tests for the static recursive model index (repro.learned.rmi)."""

import pytest

from repro.learned import RMIndex


class TestConstruction:
    def test_branching_validation(self):
        with pytest.raises(ValueError):
            RMIndex(branching=0)

    def test_requires_bulk_load(self):
        idx = RMIndex()
        with pytest.raises(RuntimeError):
            idx.get(1)
        with pytest.raises(RuntimeError):
            idx.scan(0, 5)

    def test_empty_bulk_load(self):
        idx = RMIndex()
        idx.bulk_load([], [])
        assert idx.get(1) is None
        assert idx.scan(0, 5) == []


class TestLookups:
    def test_roundtrip(self, rng):
        keys = rng.sample(range(2**40), 8000)
        idx = RMIndex(branching=32)
        idx.bulk_load(keys, [k * 2 for k in keys])
        assert len(idx) == len(keys)
        for k in keys[::7]:
            assert idx.get(k) == k * 2
        assert idx.model_count() > 1

    def test_missing_keys(self, rng):
        keys = rng.sample(range(2, 2**40, 2), 2000)  # even keys only
        idx = RMIndex()
        idx.bulk_load(keys, keys)
        for k in keys[:200]:
            assert idx.get(k + 1) is None
        assert (keys[0] + 1) not in idx
        assert keys[0] in idx

    def test_error_bound_recorded(self, rng):
        keys = rng.sample(range(2**40), 5000)
        idx = RMIndex(branching=16)
        idx.bulk_load(keys, keys)
        assert idx.max_error() >= 0

    def test_skewed_keys_still_exact(self, rng):
        """Clustered keys blow up model error but never correctness."""
        keys = []
        for c in rng.sample(range(2**40), 10):
            keys.extend(range(c, c + 300))
        keys = sorted(set(keys))
        idx = RMIndex(branching=8)
        idx.bulk_load(keys, keys)
        for k in rng.sample(keys, 500):
            assert idx.get(k) == k


class TestScan:
    def test_scan_matches_reference(self, rng):
        keys = rng.sample(range(2**40), 4000)
        idx = RMIndex()
        idx.bulk_load(keys, keys)
        ref = sorted(keys)
        assert [k for k, _ in idx.scan(ref[100], 50)] == ref[100:150]
        assert [k for k, _ in idx.items()] == ref

    def test_scan_past_end(self):
        idx = RMIndex()
        idx.bulk_load([1, 2], [1, 2])
        assert idx.scan(3, 10) == []


class TestStatic:
    def test_insert_rejected(self):
        idx = RMIndex()
        idx.bulk_load([1], [1])
        with pytest.raises(NotImplementedError):
            idx.insert(2, 2)
        with pytest.raises(NotImplementedError):
            idx.delete(1)

    def test_rebuild_replaces_content(self):
        idx = RMIndex()
        idx.bulk_load([1, 2, 3], "abc")
        idx.bulk_load([10, 20], "xy")
        assert idx.get(1) is None
        assert idx.get(10) == "x"
        assert len(idx) == 2
