"""Smoke tests keeping the fast examples runnable.

The slow examples (taxi_trips, record_replay, index_shootout,
concurrent_cache, review_store) are exercised indirectly by the
equivalent benchmark drivers; the three quick ones run here end to end
so a refactor cannot silently break the documented entry points.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"
FAST = [
    "quickstart.py",
    "characterize_dataset.py",
    "embedded_store.py",
    "durable_store.py",
]


@pytest.mark.parametrize("script", FAST)
def test_fast_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_all_examples_compile():
    """Every example (fast or slow) must at least be importable syntax."""
    import py_compile

    for script in sorted(EXAMPLES.glob("*.py")):
        py_compile.compile(str(script), doraise=True)


def test_examples_readme_lists_every_script():
    readme = (EXAMPLES / "README.md").read_text()
    for script in sorted(EXAMPLES.glob("*.py")):
        assert script.name in readme, f"{script.name} missing from examples/README.md"
