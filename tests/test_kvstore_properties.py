"""Property-based tests for the KV store (namespace isolation, codecs)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DyTISConfig
from repro.kvstore import KVStore, StringCodec, UintCodec

CFG = DyTISConfig(key_bits=40, first_level_bits=2, bucket_capacity=8, l_start=1)

_ns_ops = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),           # namespace
        st.sampled_from(["put", "get", "delete"]),  # operation
        st.integers(0, 500),                        # key
        st.integers(0, 100),                        # value
    ),
    max_size=250,
)


@given(_ns_ops)
@settings(max_examples=100, deadline=None)
def test_namespaces_behave_like_independent_dicts(ops):
    store = KVStore(CFG)
    models = {"a": {}, "b": {}, "c": {}}
    spaces = {name: store.namespace(name) for name in models}
    for ns_name, op, key, value in ops:
        ns, model = spaces[ns_name], models[ns_name]
        if op == "put":
            ns.insert(key, value)
            model[key] = value
        elif op == "get":
            assert ns.get(key) == model.get(key)
        else:
            assert ns.delete(key) == (key in model)
            model.pop(key, None)
    for name, model in models.items():
        ns = spaces[name]
        assert len(ns) == len(model)
        assert dict(ns.items()) == model
        assert [k for k, _ in ns.items()] == sorted(model)
    assert len(store) == sum(len(m) for m in models.values())


_words = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=1, max_codepoint=0x7F),
        min_size=1,
        max_size=4,
    ).filter(lambda s: len(s.encode()) <= 4),
    min_size=1,
    max_size=40,
    unique=True,
)


@given(_words)
@settings(max_examples=100, deadline=None)
def test_string_namespace_scans_lexicographically(words):
    store = KVStore(CFG)
    ns = store.namespace("words", codec=StringCodec(max_length=4))
    for w in words:
        ns.insert(w, len(w))
    ordered = sorted(words, key=lambda w: w.encode())
    assert [k for k, _ in ns.items()] == ordered
    got = ns.scan(ordered[0], len(words))
    assert [k for k, _ in got] == ordered


@given(st.lists(st.integers(0, 2**20 - 1), min_size=1, max_size=60, unique=True))
@settings(max_examples=100, deadline=None)
def test_scan_clipping_never_leaks(keys):
    """A namespace's scan must never surface a neighbour's records."""
    store = KVStore(CFG)
    first = store.namespace("first", codec=UintCodec(20))
    second = store.namespace("second", codec=UintCodec(20))
    for k in keys:
        first.insert(k, "f")
        second.insert(k, "s")
    got = first.scan(min(keys), len(keys) * 3)
    assert len(got) == len(keys)
    assert all(v == "f" for _, v in got)
