"""API-surface stability: every documented public name imports and works."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", sorted(repro._LAZY))
    def test_lazy_exports_resolve(self, name):
        obj = getattr(repro, name)
        assert callable(obj)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing


PUBLIC_SURFACE = {
    "repro.core": [
        "DyTIS", "ConcurrentDyTIS", "DyTISConfig", "Bucket",
        "PiecewiseRemap", "Segment", "OperationStats",
    ],
    "repro.hashing": ["ExtendibleHashing", "CCEH", "pseudo_key"],
    "repro.btree": ["BPlusTree"],
    "repro.learned": [
        "LinearModel", "GappedArray", "AlexIndex", "XIndex",
        "RMIndex", "LippIndex", "PGMIndex", "StaticPGM",
    ],
    "repro.plr": ["GreedyPLR", "PLRSegment", "fit_plr", "count_models"],
    "repro.metrics": [
        "variance_of_skewness", "key_distribution_divergence",
        "kl_divergence", "characterize", "calibrate_gamma",
    ],
    "repro.datasets": [
        "generate", "shuffled", "uniform", "lognormal", "longlat",
        "longitudes", "map_like", "review_like", "taxi_like",
        "dataset_stats", "table1",
    ],
    "repro.workloads": [
        "ZipfianChooser", "UniformChooser", "HotspotChooser",
        "Operation", "OpKind", "WorkloadSpec", "WORKLOADS",
        "make_workload", "generate_operations", "save_trace", "load_trace",
    ],
    "repro.kvstore": [
        "KVStore", "Namespace", "UintCodec", "StringCodec",
        "CompositeCodec", "CodecError", "save_snapshot", "load_snapshot",
        "dump_snapshot_bytes", "load_snapshot_bytes",
        "read_snapshot_header", "SnapshotError", "SnapshotCorruptError",
    ],
    "repro.wal": [
        "DurableKVStore", "DurableNamespace", "WriteAheadLog",
        "RecoveryError", "WalMetrics", "FsyncPolicy", "AlwaysFsync",
        "BatchFsync", "NeverFsync", "parse_policy", "OsFS", "SimFS",
        "FaultSpec", "SimulatedCrash",
    ],
    "repro.bench": [
        "make_adapter", "run_load", "run_operations", "run_ycsb",
        "deep_size_bytes", "LatencyStats", "WorkloadResult",
        "ADAPTER_NAMES",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_public_surface_importable(module_name):
    module = importlib.import_module(module_name)
    for name in PUBLIC_SURFACE[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"
        assert name in module.__all__, f"{name} not in {module_name}.__all__"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_modules_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert (module.__doc__ or "").strip(), f"{module_name} lacks a docstring"


def test_every_public_class_documented():
    for module_name, names in PUBLIC_SURFACE.items():
        module = importlib.import_module(module_name)
        for name in names:
            obj = getattr(module, name)
            if isinstance(obj, type):
                assert (obj.__doc__ or "").strip(), f"{module_name}.{name}"
