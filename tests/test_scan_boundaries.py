"""Range operations across first-level table boundaries.

Scans that start in one EH table and finish in another must hop the
per-table sibling chains (each chain ends with None at its table
boundary) and skip tables that were never materialised.  These tests
pin that traversal for ``scan``, ``scan_range``, and ``count_range``,
including the low-boundary segment fast path of ``count_range``.
"""

import pytest

from repro.core import DyTIS

# small_config: key_bits=32, first_level_bits=4 -> table = key >> 28.
TABLE_SHIFT = 28


def _key(table, local):
    return (table << TABLE_SHIFT) | local


@pytest.fixture
def sparse_index(small_config, rng):
    """Keys in tables 1, 4, 5 and 14 only; 0, 2-3, 6-13, 15 stay empty."""
    d = DyTIS(small_config)
    keys = []
    for table in (1, 4, 5, 14):
        for _ in range(400):
            keys.append(_key(table, rng.randrange(1 << TABLE_SHIFT)))
    keys = sorted(set(keys))
    for k in keys:
        d.insert(k, k)
    return d, keys


def test_scan_crosses_table_boundary(sparse_index):
    d, keys = sparse_index
    start = _key(1, 0)
    got = d.scan(start, len(keys))
    assert got == [(k, k) for k in keys]


def test_scan_count_spans_tables(sparse_index):
    d, keys = sparse_index
    # Start near the end of table 1 so the batch must continue in table 4.
    in_t1 = [k for k in keys if k >> TABLE_SHIFT == 1]
    start = in_t1[-5]
    got = d.scan(start, 50)
    expect = [(k, k) for k in keys if k >= start][:50]
    assert got == expect
    assert {k >> TABLE_SHIFT for k, _ in got} >= {1, 4}


def test_scan_from_empty_table(sparse_index):
    d, keys = sparse_index
    # Table 2 is empty: the scan must skip ahead to table 4's keys.
    got = d.scan(_key(2, 123), 10)
    expect = [(k, k) for k in keys if k >> TABLE_SHIFT >= 4][:10]
    assert got == expect


def test_scan_past_last_table(sparse_index):
    d, keys = sparse_index
    assert d.scan(_key(15, 0), 10) == []
    last = keys[-1]
    assert d.scan(last, 10) == [(last, last)]


def test_scan_range_across_tables(sparse_index):
    d, keys = sparse_index
    low, high = _key(1, 1 << 27), _key(14, 1 << 27)
    got = d.scan_range(low, high)
    assert got == [(k, k) for k in keys if low <= k < high]


def test_scan_range_entirely_inside_gap(sparse_index):
    d, _ = sparse_index
    assert d.scan_range(_key(6, 0), _key(13, 0)) == []


def test_count_range_across_tables(sparse_index):
    d, keys = sparse_index
    low, high = _key(1, 1 << 27), _key(14, 1 << 27)
    assert d.count_range(low, high) == sum(
        1 for k in keys if low <= k < high
    )


def test_count_range_low_boundary_mid_segment(sparse_index):
    """The low bound lands mid-segment: iter_from must skip keys < low."""
    d, keys = sparse_index
    in_t4 = [k for k in keys if k >> TABLE_SHIFT == 4]
    low = in_t4[len(in_t4) // 2] + 1  # strictly inside table 4's range
    high = _key(15, 0)
    assert d.count_range(low, high) == sum(
        1 for k in keys if low <= k < high
    )


def test_count_range_single_segment_window(sparse_index):
    """Low and high inside the same segment (entry == boundary segment)."""
    d, keys = sparse_index
    in_t5 = [k for k in keys if k >> TABLE_SHIFT == 5]
    low, high = in_t5[10], in_t5[20]
    assert d.count_range(low, high) == 10
    assert d.count_range(low, low) == 0


def test_range_ops_agree_after_bulk_load(small_config, sparse_index):
    """Bulk-loaded index answers boundary queries like the inserted one."""
    d, keys = sparse_index
    b = DyTIS(small_config)
    b.bulk_load(keys, keys)
    for low, high in [
        (_key(1, 1 << 27), _key(14, 1 << 27)),
        (_key(0, 0), _key(16, 0) - 1),
        (_key(6, 0), _key(13, 0)),
    ]:
        assert b.scan_range(low, high) == d.scan_range(low, high)
        assert b.count_range(low, high) == d.count_range(low, high)
    assert b.scan(_key(2, 123), 17) == d.scan(_key(2, 123), 17)
