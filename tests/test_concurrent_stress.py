"""Heavier concurrency stress: structural churn racing reads and scans."""

import random
import threading

import pytest

from repro.core import ConcurrentDyTIS, DyTISConfig

CFG = DyTISConfig(key_bits=32, first_level_bits=2, bucket_capacity=4, l_start=1)


def _run_threads(workers):
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        return wrapped

    threads = [threading.Thread(target=guard(w)) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestStructuralChurn:
    def test_sequential_inserters_force_constant_splits(self):
        """Sequential keys hammer the same segments from every thread."""
        index = ConcurrentDyTIS(CFG)
        n_threads, per_thread = 4, 4000
        bases = [t * per_thread for t in range(n_threads)]

        def inserter(base):
            def work():
                for i in range(per_thread):
                    index.insert(base + i, base + i)

            return work

        errors = _run_threads([inserter(b) for b in bases])
        assert not errors
        assert len(index) == n_threads * per_thread
        index.check_invariants()
        assert index.stats.structural_ops() > 0

    def test_scans_stay_sorted_during_churn(self):
        index = ConcurrentDyTIS(CFG)
        rng = random.Random(0)
        seed_keys = rng.sample(range(2**32), 3000)
        for k in seed_keys:
            index.insert(k, k)
        stop = threading.Event()

        def writer():
            wrng = random.Random(1)
            for _ in range(6000):
                index.insert(wrng.randrange(2**32), 1)
            stop.set()

        observed = []

        def scanner():
            srng = random.Random(2)
            while not stop.is_set():
                start = srng.randrange(2**32)
                out = index.scan(start, 25)
                keys = [k for k, _ in out]
                assert keys == sorted(keys)
                assert all(k >= start for k in keys)
                observed.append(len(out))

        errors = _run_threads([writer, scanner, scanner])
        assert not errors
        assert observed  # the scanners actually ran
        index.check_invariants()

    def test_mixed_churn_with_deletes(self):
        index = ConcurrentDyTIS(CFG)
        rng = random.Random(3)
        keys = rng.sample(range(2**32), 6000)
        for k in keys[:3000]:
            index.insert(k, k)

        def inserter():
            for k in keys[3000:]:
                index.insert(k, k)

        def deleter():
            for k in keys[:1500]:
                while not index.delete(k):
                    pass  # key must exist: delete can't fail spuriously

        def reader():
            rrng = random.Random(4)
            for _ in range(4000):
                k = keys[rrng.randrange(len(keys))]
                v = index.get(k)
                assert v is None or v == k

        errors = _run_threads([inserter, deleter, reader, reader])
        assert not errors
        assert len(index) == 6000 - 1500
        index.check_invariants()
        survivors = sorted(set(keys) - set(keys[:1500]))
        assert [k for k, _ in index.items()] == survivors
