"""Tests for the concurrent DyTIS wrapper (repro.core.concurrent)."""

import threading
import time

import pytest

from repro.core import ConcurrentDyTIS, DyTISConfig
from repro.core.concurrent import RWLock


class TestRWLock:
    def test_multiple_readers(self):
        lock = RWLock()
        acquired = []

        def reader():
            with lock.read():
                acquired.append(1)
                time.sleep(0.02)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Readers overlap: total well under 4 * 20ms.
        assert time.perf_counter() - t0 < 0.06
        assert len(acquired) == 4

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []

        def writer():
            with lock.write():
                order.append("w-in")
                time.sleep(0.03)
                order.append("w-out")

        def reader():
            time.sleep(0.01)  # let the writer in first
            with lock.read():
                order.append("r")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join()
        tr.join()
        assert order == ["w-in", "w-out", "r"]

    def test_writer_preference(self):
        lock = RWLock()
        lock.acquire_read()
        done = []

        def writer():
            with lock.write():
                done.append("w")

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.01)
        assert not done  # writer blocked by the reader
        lock.release_read()
        t.join()
        assert done == ["w"]


@pytest.fixture
def cindex():
    return ConcurrentDyTIS(
        DyTISConfig(key_bits=32, first_level_bits=4, bucket_capacity=8, l_start=2)
    )


class TestConcurrentOperations:
    def test_single_thread_semantics(self, cindex):
        cindex.insert(5, "a")
        assert cindex.get(5) == "a"
        assert 5 in cindex
        cindex.insert(5, "b")
        assert cindex.get(5) == "b"
        assert len(cindex) == 1
        assert cindex.delete(5)
        assert not cindex.delete(5)

    def test_scan_single_thread(self, cindex):
        for k in range(100):
            cindex.insert(k * 7, k)
        got = cindex.scan(35, 5)
        assert [k for k, _ in got] == [35, 42, 49, 56, 63]

    def test_parallel_inserts_all_present(self, cindex, rng):
        keys = rng.sample(range(2**32), 8000)
        shards = [keys[i::4] for i in range(4)]
        errors = []

        def worker(shard):
            try:
                for k in shard:
                    cindex.insert(k, k + 1)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in shards]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cindex) == len(keys)
        cindex.check_invariants()
        for k in rng.sample(keys, 500):
            assert cindex.get(k) == k + 1

    def test_mixed_readers_and_writers(self, cindex, rng):
        base = rng.sample(range(2**32), 2000)
        for k in base:
            cindex.insert(k, k)
        extra = rng.sample(range(2**32), 2000)
        extra = [k for k in extra if k not in set(base)]
        errors = []

        def writer():
            try:
                for k in extra:
                    cindex.insert(k, k)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                for k in base * 2:
                    v = cindex.get(k)
                    assert v == k
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def scanner():
            try:
                for k in base[:100]:
                    out = cindex.scan(k, 10)
                    got = [kk for kk, _ in out]
                    assert got == sorted(got)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
            threading.Thread(target=scanner),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cindex) == len(base) + len(extra)
        cindex.check_invariants()

    def test_parallel_deletes(self, cindex, rng):
        keys = rng.sample(range(2**32), 4000)
        for k in keys:
            cindex.insert(k, k)
        victims = keys[:2000]
        shards = [victims[i::4] for i in range(4)]
        results = []

        def worker(shard):
            ok = all(cindex.delete(k) for k in shard)
            results.append(ok)

        threads = [threading.Thread(target=worker, args=(s,)) for s in shards]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(results)
        assert len(cindex) == len(keys) - len(victims)
        cindex.check_invariants()

    def test_scan_range_parity(self, cindex, rng):
        keys = rng.sample(range(2**32), 2000)
        for k in keys:
            cindex.insert(k, k)
        ref = sorted(keys)
        lo, hi = ref[200], ref[900]
        got = cindex.scan_range(lo, hi)
        assert [k for k, _ in got] == ref[200:900]
        assert cindex.scan_range(5, 5) == []

    def test_scan_range_under_concurrent_writes(self, cindex, rng):
        base = rng.sample(range(2**31), 3000)
        for k in base:
            cindex.insert(k, k)
        extra = [k + 2**31 for k in base]  # disjoint upper half
        errors = []

        def writer():
            try:
                for k in extra:
                    cindex.insert(k, k)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def scanner():
            try:
                for _ in range(40):
                    out = cindex.scan_range(0, 2**31)
                    keys_only = [k for k, _ in out]
                    assert keys_only == sorted(keys_only)
                    # The lower half is stable: always fully present.
                    assert len(out) == len(base)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        ts = [threading.Thread(target=writer), threading.Thread(target=scanner)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert not errors

    def test_stats_delegation(self, cindex):
        for k in range(2000):
            cindex.insert(k, k)
        assert cindex.stats.structural_ops() > 0
        assert cindex.config.bucket_capacity == 8


class TestBatchOperations:
    def test_bulk_load_then_concurrent_reads(self, cindex, rng):
        keys = rng.sample(range(2**32), 3000)
        cindex.bulk_load(keys, keys)
        cindex.check_invariants()
        assert len(cindex) == 3000
        errors = []

        def reader(sample):
            try:
                assert cindex.get_many(sample) == [k for k in sample]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        ts = [
            threading.Thread(target=reader, args=(rng.sample(keys, 500),))
            for _ in range(4)
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert not errors

    def test_bulk_load_requires_empty(self, cindex):
        cindex.insert(1, "a")
        with pytest.raises(ValueError):
            cindex.bulk_load([2], ["b"])

    def test_insert_many_races_with_inserts(self, cindex, rng):
        chunks = [
            [(rng.randrange(2**32), i) for _ in range(300)]
            for i in range(4)
        ]
        errors = []

        def batch_writer(chunk):
            try:
                cindex.insert_many(chunk)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        ts = [
            threading.Thread(target=batch_writer, args=(c,)) for c in chunks
        ]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert not errors
        cindex.check_invariants()
        expect = {k for c in chunks for k, _ in c}
        assert len(cindex) == len(expect)
