"""Tests for KV-store snapshot persistence (repro.kvstore.snapshot)."""

import json

import pytest

from repro.core import DyTISConfig
from repro.kvstore import (
    CompositeCodec,
    KVStore,
    SnapshotCorruptError,
    SnapshotError,
    StringCodec,
    UintCodec,
    dump_snapshot_bytes,
    load_snapshot,
    load_snapshot_bytes,
    read_snapshot_header,
    save_snapshot,
)

CFG = DyTISConfig(key_bits=40, first_level_bits=2, bucket_capacity=8, l_start=1)


def _populated_store():
    store = KVStore(CFG)
    users = store.namespace("users", codec=UintCodec(20))
    tags = store.namespace("tags", codec=StringCodec(max_length=4))
    pairs = store.namespace(
        "pairs", codec=CompositeCodec(UintCodec(10), UintCodec(10))
    )
    for i in range(200):
        users.insert(i, {"n": i})
    for word in ("abc", "xyz", "m"):
        tags.insert(word, word.upper())
    pairs.insert((3, 4), [3, 4])
    return store


def _fresh_store():
    store = KVStore(CFG)
    store.namespace("users", codec=UintCodec(20))
    store.namespace("tags", codec=StringCodec(max_length=4))
    store.namespace("pairs", codec=CompositeCodec(UintCodec(10), UintCodec(10)))
    return store


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        src = _populated_store()
        path = tmp_path / "snap.jsonl"
        n = save_snapshot(src, path)
        assert n == 204
        dst = _fresh_store()
        assert load_snapshot(dst, path) == 204
        assert dst.namespace("users").get(42) == {"n": 42}
        assert dst.namespace("tags").get("abc") == "ABC"
        assert dst.namespace("pairs").get((3, 4)) == [3, 4]
        assert list(dst.namespace("users").items()) == list(
            src.namespace("users").items()
        )

    def test_missing_namespace_rejected(self, tmp_path):
        src = _populated_store()
        path = tmp_path / "snap.jsonl"
        save_snapshot(src, path)
        empty = KVStore(CFG)  # no namespaces opened
        with pytest.raises(ValueError, match="users"):
            load_snapshot(empty, path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_snapshot(KVStore(CFG), path)

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"version": 9, "namespaces": []}) + "\n")
        with pytest.raises(ValueError):
            load_snapshot(KVStore(CFG), path)

    def test_empty_store_roundtrip(self, tmp_path):
        store = KVStore(CFG)
        path = tmp_path / "empty.jsonl"
        assert save_snapshot(store, path) == 0
        assert load_snapshot(KVStore(CFG), path) == 0


class TestSnapshotFormatV2:
    """The versioned, checksummed format plus backward compatibility."""

    def test_header_carries_version_count_and_checksum(self):
        data = dump_snapshot_bytes(_populated_store())
        header = read_snapshot_header(data, "test")
        assert header["version"] == 2
        assert header["records"] == 204
        assert header["namespaces"] == ["users", "tags", "pairs"]
        assert isinstance(header["crc32"], int)

    def test_truncated_body_rejected_before_applying(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        save_snapshot(_populated_store(), path)
        path.write_bytes(path.read_bytes()[:-40])
        dst = _fresh_store()
        with pytest.raises(SnapshotCorruptError, match="checksum"):
            load_snapshot(dst, path)
        # Nothing was half-loaded: verification happens up front.
        assert len(dst.namespace("users")) == 0

    def test_bitflip_in_body_rejected(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        save_snapshot(_populated_store(), path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(_fresh_store(), path)

    def test_record_count_mismatch_rejected(self, tmp_path):
        data = dump_snapshot_bytes(_populated_store())
        header_line, _, body = data.partition(b"\n")
        header = json.loads(header_line)
        header["records"] += 1
        header["crc32"] = __import__("zlib").crc32(body) & 0xFFFFFFFF
        path = tmp_path / "snap.jsonl"
        path.write_bytes(json.dumps(header).encode() + b"\n" + body)
        with pytest.raises(SnapshotCorruptError, match="promises"):
            load_snapshot(_fresh_store(), path)

    def test_future_version_rejected_with_clear_error(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        path.write_text(json.dumps({"version": 9, "namespaces": []}) + "\n")
        with pytest.raises(SnapshotError, match=r"v9.*v2"):
            load_snapshot(KVStore(CFG), path)

    def test_v1_header_without_checksum_still_loads(self, tmp_path):
        src = _populated_store()
        data = dump_snapshot_bytes(src)
        _, _, body = data.partition(b"\n")
        v1_header = {"version": 1, "namespaces": src.namespaces()}
        path = tmp_path / "v1.jsonl"
        path.write_bytes(json.dumps(v1_header).encode() + b"\n" + body)
        dst = _fresh_store()
        assert load_snapshot(dst, path) == 204
        assert dst.namespace("users").get(42) == {"n": 42}

    def test_headerless_v0_still_loads(self, tmp_path):
        data = dump_snapshot_bytes(_populated_store())
        _, _, body = data.partition(b"\n")  # drop the header entirely
        path = tmp_path / "v0.jsonl"
        path.write_bytes(body)
        dst = _fresh_store()
        assert load_snapshot(dst, path) == 204
        assert dst.namespace("tags").get("abc") == "ABC"

    def test_extra_header_fields_roundtrip_and_are_ignored_on_load(self):
        store = _populated_store()
        data = dump_snapshot_bytes(store, extra_header={"checkpoint_lsn": 41})
        assert read_snapshot_header(data, "t")["checkpoint_lsn"] == 41
        dst = _fresh_store()
        assert load_snapshot_bytes(dst, data, "t") == 204

    def test_garbage_first_line_is_corruption_not_crash(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_bytes(b"\x00\xff not json at all\n")
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(KVStore(CFG), path)
