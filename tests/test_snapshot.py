"""Tests for KV-store snapshot persistence (repro.kvstore.snapshot)."""

import json

import pytest

from repro.core import DyTISConfig
from repro.kvstore import (
    CompositeCodec,
    KVStore,
    StringCodec,
    UintCodec,
    load_snapshot,
    save_snapshot,
)

CFG = DyTISConfig(key_bits=40, first_level_bits=2, bucket_capacity=8, l_start=1)


def _populated_store():
    store = KVStore(CFG)
    users = store.namespace("users", codec=UintCodec(20))
    tags = store.namespace("tags", codec=StringCodec(max_length=4))
    pairs = store.namespace(
        "pairs", codec=CompositeCodec(UintCodec(10), UintCodec(10))
    )
    for i in range(200):
        users.insert(i, {"n": i})
    for word in ("abc", "xyz", "m"):
        tags.insert(word, word.upper())
    pairs.insert((3, 4), [3, 4])
    return store


def _fresh_store():
    store = KVStore(CFG)
    store.namespace("users", codec=UintCodec(20))
    store.namespace("tags", codec=StringCodec(max_length=4))
    store.namespace("pairs", codec=CompositeCodec(UintCodec(10), UintCodec(10)))
    return store


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        src = _populated_store()
        path = tmp_path / "snap.jsonl"
        n = save_snapshot(src, path)
        assert n == 204
        dst = _fresh_store()
        assert load_snapshot(dst, path) == 204
        assert dst.namespace("users").get(42) == {"n": 42}
        assert dst.namespace("tags").get("abc") == "ABC"
        assert dst.namespace("pairs").get((3, 4)) == [3, 4]
        assert list(dst.namespace("users").items()) == list(
            src.namespace("users").items()
        )

    def test_missing_namespace_rejected(self, tmp_path):
        src = _populated_store()
        path = tmp_path / "snap.jsonl"
        save_snapshot(src, path)
        empty = KVStore(CFG)  # no namespaces opened
        with pytest.raises(ValueError, match="users"):
            load_snapshot(empty, path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_snapshot(KVStore(CFG), path)

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"version": 9, "namespaces": []}) + "\n")
        with pytest.raises(ValueError):
            load_snapshot(KVStore(CFG), path)

    def test_empty_store_roundtrip(self, tmp_path):
        store = KVStore(CFG)
        path = tmp_path / "empty.jsonl"
        assert save_snapshot(store, path) == 0
        assert load_snapshot(KVStore(CFG), path) == 0
