"""BatchOpsProtocol conformance: every index speaks the batch contract.

The server's coalescer calls ``get_many``/``insert_many``/
``delete_range`` on whatever index backs the store, so conformance is
a correctness property of the whole service, not an optimisation.
These tests assert (a) structural conformance for all eight ordered
indexes, (b) batch-vs-scalar equivalence on each, (c) both accepted
``insert_many`` shapes, and (d) the ``batch_pairs`` normaliser's error
contract.
"""

import random

import pytest

from repro.api import (
    BatchOpsMixin,
    BatchOpsProtocol,
    batch_pairs,
    is_batch_index,
)
from repro.kvstore import KVStore
from tests.test_protocol import ALL_INDEX_CLASSES, MUTABLE_CLASSES, _make


@pytest.mark.parametrize("cls", ALL_INDEX_CLASSES)
def test_batch_conformance(cls):
    obj = _make(cls)
    assert isinstance(obj, BatchOpsProtocol)
    assert is_batch_index(obj)


def test_non_batch_rejected():
    from repro.hashing import ExtendibleHashing

    assert not is_batch_index(object())
    # Hash baselines predate the ordered contract: no range ops.
    assert not is_batch_index(ExtendibleHashing())


@pytest.mark.parametrize("cls", MUTABLE_CLASSES)
def test_batch_matches_scalar(cls):
    rng = random.Random(7)
    keys = rng.sample(range(1, 100_000), 800)
    idx = _make(cls)
    ref = _make(cls)
    idx.insert_many(keys, [k * 2 for k in keys])
    for k in keys:
        ref.insert(k, k * 2)
    assert list(idx.items()) == list(ref.items())
    probes = rng.sample(keys, 200) + [rng.randrange(100_000, 200_000)
                                      for _ in range(200)]
    assert idx.get_many(probes) == [ref.get(k) for k in probes]
    lo, hi = 20_000, 70_000
    expected = sum(1 for k in keys if lo <= k < hi)
    assert idx.delete_range(lo, hi) == expected
    assert idx.count_range(lo, hi) == 0
    assert len(idx) == len(keys) - expected


@pytest.mark.parametrize("cls", MUTABLE_CLASSES)
def test_insert_many_both_shapes(cls):
    pairs = [(3, "a"), (1, "b"), (2, "c")]
    via_pairs = _make(cls)
    via_pairs.insert_many(pairs)
    via_columns = _make(cls)
    via_columns.insert_many([k for k, _ in pairs], [v for _, v in pairs])
    assert list(via_pairs.items()) == list(via_columns.items())


def test_insert_many_duplicate_keys_last_wins():
    for cls in MUTABLE_CLASSES:
        idx = _make(cls)
        idx.insert_many([5, 5, 5], ["a", "b", "c"])
        assert idx.get(5) == "c", cls.__name__
        assert len(idx) == 1


def test_batch_pairs_normaliser():
    assert batch_pairs([(1, "a")]) == [(1, "a")]
    assert batch_pairs([1, 2], ["a", "b"]) == [(1, "a"), (2, "b")]
    assert batch_pairs([], []) == []
    assert batch_pairs(iter([1]), iter(["x"])) == [(1, "x")]
    with pytest.raises(ValueError, match="2 keys but 1 values"):
        batch_pairs([1, 2], ["a"])


def test_mixin_defaults_are_the_scalar_loops():
    class Tiny(BatchOpsMixin):
        def __init__(self):
            self.d = {}

        def get(self, key):
            return self.d.get(key)

        def insert(self, key, value):
            self.d[key] = value

        def delete(self, key):
            return self.d.pop(key, None) is not None

        def scan_range(self, low, high):
            return sorted(
                (k, v) for k, v in self.d.items() if low <= k < high
            )

    t = Tiny()
    t.insert_many([1, 2, 3], ["a", "b", "c"])
    assert t.get_many([2, 9]) == ["b", None]
    assert t.delete_range(1, 3) == 2
    assert t.d == {3: "c"}


def test_namespace_speaks_the_batch_contract():
    """KVStore namespaces expose the same batch surface as the indexes."""
    ns = KVStore().namespace("t")
    ns.insert_many([4, 1, 9], ["d", "a", "i"])
    ns.insert_many([(2, "b")])
    assert ns.get_many([1, 2, 4, 9, 5]) == ["a", "b", "d", "i", None]
    assert ns.delete_range(1, 5) == 3
    assert list(ns.items()) == [(9, "i")]
