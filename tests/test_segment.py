"""Tests for segments and the Algorithm-1 planners (repro.core.segment)."""

import numpy as np
import pytest

from repro.core.remap import PiecewiseRemap
from repro.core.segment import (
    Segment,
    SegmentOverflow,
    build_fitting,
    count_pieces,
    layout_fits,
    plan_remap,
    plan_split,
)


def make_segment(domain_bits=8, allocs=(2, 2), capacity=4, local_depth=3):
    return Segment(local_depth, PiecewiseRemap(domain_bits, list(allocs)), capacity)


class TestSegmentBasics:
    def test_insert_get_delete(self):
        s = make_segment()
        assert s.insert(10, "a") == "inserted"
        assert s.insert(10, "b") == "updated"
        assert s.get(10) == "b"
        assert s.total_keys == 1
        assert s.delete(10)
        assert not s.delete(10)
        assert s.total_keys == 0
        s.check_invariants()

    def test_full_bucket(self):
        s = make_segment(domain_bits=8, allocs=(1,), capacity=2)
        assert s.insert(1, 1) == "inserted"
        assert s.insert(2, 2) == "inserted"
        assert s.insert(3, 3) == "full"

    def test_piece_counts_maintained(self):
        s = make_segment(domain_bits=4, allocs=(1, 1), capacity=8)
        s.insert(0, 0)   # piece 0
        s.insert(1, 1)   # piece 0
        s.insert(8, 8)   # piece 1
        assert s.piece_counts == [2, 1]
        s.delete(1)
        assert s.piece_counts == [1, 1]
        s.check_invariants()

    def test_items_sorted_and_full_keys(self):
        # Keys share high bits beyond the 4-bit domain.
        base = 0xAB00
        s = make_segment(domain_bits=4, allocs=(1, 1), capacity=8)
        for low in (9, 1, 14, 3):
            s.insert(base | low, low)
        assert [k for k, _ in s.items()] == [base | 1, base | 3, base | 9, base | 14]
        s.check_invariants()

    def test_iter_from(self):
        s = make_segment(domain_bits=6, allocs=(2, 2), capacity=8)
        for k in range(0, 64, 5):
            s.insert(k, k)
        got = [k for k, _ in s.iter_from(23)]
        assert got == [k for k in range(0, 64, 5) if k >= 23]

    def test_utilization(self):
        s = make_segment(domain_bits=8, allocs=(2, 2), capacity=4)
        assert s.utilization() == 0.0
        s.insert(0, 0)
        assert s.utilization() == pytest.approx(1 / 16)

    def test_collect_parallel_lists(self):
        s = make_segment(domain_bits=6, allocs=(1, 1), capacity=8)
        for k in (40, 3, 17):
            s.insert(k, k * 2)
        keys, values = s.collect()
        assert keys == [3, 17, 40]
        assert values == [6, 34, 80]


class TestBuild:
    def test_build_from_sorted(self):
        remap = PiecewiseRemap(6, [2, 2])
        keys = list(range(0, 64, 3))
        seg = Segment.build(2, remap, 16, keys, [k * 2 for k in keys])
        assert seg.total_keys == len(keys)
        assert [k for k, _ in seg.items()] == keys
        seg.check_invariants()

    def test_build_overflow_raises(self):
        remap = PiecewiseRemap(6, [1])
        with pytest.raises(SegmentOverflow):
            Segment.build(2, remap, 4, list(range(5)), list(range(5)))

    def test_build_empty(self):
        seg = Segment.build(2, PiecewiseRemap(6, [1]), 4, [], [])
        assert seg.total_keys == 0
        seg.check_invariants()


class TestLayoutFits:
    def test_fits(self):
        remap = PiecewiseRemap(6, [2, 2])
        keys = np.array([0, 20, 40, 60], dtype=np.uint64)
        assert layout_fits(remap, keys, bucket_capacity=2)

    def test_overflow_detected(self):
        remap = PiecewiseRemap(6, [1])
        keys = np.arange(5, dtype=np.uint64)
        assert not layout_fits(remap, keys, bucket_capacity=4)

    def test_extra_key_counted(self):
        remap = PiecewiseRemap(6, [1])
        keys = np.arange(4, dtype=np.uint64)
        assert layout_fits(remap, keys, 4)
        assert not layout_fits(remap, keys, 4, extra_key=10)


class TestCountPieces:
    def test_histogram(self):
        keys = np.array([0, 1, 8, 9, 15], dtype=np.uint64)
        assert count_pieces(keys, 4, 1).tolist() == [2, 3]
        assert count_pieces(keys, 4, 2).tolist() == [2, 0, 2, 1]


class TestPlanRemap:
    def test_skewed_segment_gets_finer_allocation(self):
        # All keys cluster in the first sixteenth of the domain.
        seg = make_segment(domain_bits=8, allocs=(4,), capacity=4)
        for k in range(10):
            seg.insert(k, k)
        # Bucket 0 is over capacity (can't be via insert; build directly).
        seg2 = make_segment(domain_bits=8, allocs=(4,), capacity=4)
        for k in [0, 1, 2, 3]:
            seg2.insert(k, k)
        plan = plan_remap(seg2, insert_key=4, cap=8,
                          util_threshold=0.6, max_piece_bits=6)
        assert plan is not None
        lk = seg2.local_keys_array()
        assert layout_fits(plan, lk, 4, extra_key=4)

    def test_returns_none_when_cap_blocks(self):
        seg = make_segment(domain_bits=3, allocs=(1,), capacity=2, local_depth=3)
        seg.insert(0, 0)
        seg.insert(1, 1)
        # cap equal to current size and keys too clustered to re-spread.
        plan = plan_remap(seg, insert_key=2, cap=1,
                          util_threshold=0.6, max_piece_bits=1)
        assert plan is None

    def test_plan_respects_cap(self):
        # A tight cluster at the bottom of a 1024-key domain: the plan
        # must refine sub-ranges to isolate it rather than exhaust the cap.
        seg = make_segment(domain_bits=10, allocs=(2,), capacity=4)
        for k in range(0, 4):
            assert seg.insert(k, k) == "inserted"
        plan = plan_remap(seg, insert_key=8, cap=16,
                          util_threshold=0.6, max_piece_bits=8)
        assert plan is not None
        assert plan.n_buckets <= 16
        assert layout_fits(plan, seg.local_keys_array(), 4, extra_key=8)


class TestPlanSplit:
    def test_paper_sizing_multi_piece(self):
        seg = make_segment(domain_bits=8, allocs=(1, 3), capacity=4)
        left, right = plan_split(seg, cap_child=64)
        # Children keep slopes with doubled allocations (paper example).
        assert left.n_buckets == 2
        assert right.n_buckets == 6
        assert left.domain_bits == 7

    def test_single_piece_sized_from_counts(self):
        seg = make_segment(domain_bits=8, allocs=(4,), capacity=4)
        # 8 keys spread over the left half: 4 per bucket-span so every
        # insert lands in a non-full bucket.
        for k in (0, 1, 2, 3, 64, 65, 66, 67):
            assert seg.insert(k, k) == "inserted"
        left, right = plan_split(seg, cap_child=64)
        assert left.n_buckets == 4  # 2 * ceil(8/4)
        assert right.n_buckets == 1

    def test_cap_clamps_children(self):
        seg = make_segment(domain_bits=8, allocs=(8, 8), capacity=4)
        left, right = plan_split(seg, cap_child=4)
        assert left.n_buckets <= 4 and right.n_buckets <= 4


class TestBuildFitting:
    def test_fits_immediately(self):
        remap = PiecewiseRemap(6, [4])
        keys = list(range(0, 64, 8))
        seg = build_fitting(2, remap, 4, keys, keys, cap=8, max_piece_bits=4)
        assert seg.total_keys == len(keys)
        seg.check_invariants()

    def test_adjusts_for_clustered_keys(self):
        # 12 keys in one sixteenth of the domain; initial layout [1].
        remap = PiecewiseRemap(8, [1])
        keys = list(range(12))
        seg = build_fitting(2, remap, 4, keys, keys, cap=16, max_piece_bits=8)
        assert seg.total_keys == 12
        seg.check_invariants()

    def test_safety_valve_exceeds_cap_rather_than_losing_keys(self):
        remap = PiecewiseRemap(8, [1])
        keys = list(range(32))
        seg = build_fitting(2, remap, 4, keys, keys, cap=2, max_piece_bits=2)
        assert seg.total_keys == 32  # all keys present despite cap 2
        seg.check_invariants()
