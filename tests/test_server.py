"""The network service: server, clients, coalescing, shutdown, metrics.

The server runs on a helper thread (:class:`repro.server.testing.
ServerThread`); tests talk to it over real sockets.  The headline
property is that :class:`RemoteIndex` *is* an index -- it satisfies
``IndexProtocol``/``BatchOpsProtocol`` structurally and agrees with a
local DyTIS on the same workload -- and that the coalescing fast path
is behaviourally invisible (same results, per-connection order
preserved) while actually batching under pipelined load.
"""

import asyncio
import random
import urllib.request

import pytest

from repro.api import BatchOpsProtocol, IndexProtocol
from repro.core import DyTIS
from repro.kvstore import KVStore
from repro.obs import parse_prometheus
from repro.server import (
    AsyncRemoteIndex,
    RemoteError,
    RemoteIndex,
    ServerConfig,
    ServerThread,
    frame,
)
from repro.wal import DurableKVStore


@pytest.fixture(params=[True, False], ids=["coalesce", "naive"])
def server(request):
    with ServerThread(
        config=ServerConfig(coalesce=request.param, admin_port=0)
    ) as st:
        yield st


@pytest.fixture
def remote(server):
    with RemoteIndex(server.host, server.port, "t") as idx:
        yield idx


class TestRemoteIndexIsAnIndex:
    def test_satisfies_protocols(self, remote):
        assert isinstance(remote, IndexProtocol)
        assert isinstance(remote, BatchOpsProtocol)

    def test_full_surface(self, remote):
        remote.insert(5, "five")
        remote.insert_many([1, 2, 3], ["a", "b", "c"])
        assert remote.get(5) == "five"
        assert remote.get(99) is None
        assert remote.get_many([1, 3, 99]) == ["a", "c", None]
        assert remote.scan(0, 2) == [(1, "a"), (2, "b")]
        assert remote.scan_range(2, 5) == [(2, "b"), (3, "c")]
        assert remote.count_range(0, 100) == 4
        assert 3 in remote and 99 not in remote
        assert len(remote) == 4
        assert remote.delete(1) is True
        assert remote.delete(1) is False
        assert remote.delete_range(2, 4) == 2
        assert list(remote.items()) == [(5, "five")]

    def test_differential_vs_local_dytis(self, remote):
        rng = random.Random(31)
        keys = rng.sample(range(1, 200_000), 3000)
        local = DyTIS()
        remote.bulk_load(keys, [k * 3 for k in keys])
        for k in keys:
            local.insert(k, k * 3)
        assert len(remote) == len(local)
        probes = rng.sample(keys, 300) + [
            rng.randrange(200_000, 400_000) for _ in range(100)
        ]
        assert remote.get_many(probes) == local.get_many(probes)
        for lo, hi in [(0, 1), (7, 7), (100, 50_000), (150_000, 160_000)]:
            assert remote.scan_range(lo, hi) == local.scan_range(lo, hi)
            assert remote.count_range(lo, hi) == local.count_range(lo, hi)
        assert remote.delete_range(40_000, 90_000) == local.delete_range(
            40_000, 90_000
        )
        assert list(remote.items()) == list(local.items())

    def test_namespaces_are_disjoint(self, server):
        with RemoteIndex(server.host, server.port, "a") as a, RemoteIndex(
            server.host, server.port, "b"
        ) as b:
            a.insert(1, "a1")
            b.insert(1, "b1")
            assert a.get(1) == "a1"
            assert b.get(1) == "b1"
            assert a.ns_id != b.ns_id

    def test_ns_open_is_idempotent(self, server):
        with RemoteIndex(server.host, server.port, "same") as a, RemoteIndex(
            server.host, server.port, "same"
        ) as b:
            assert a.ns_id == b.ns_id
            a.ping()


class TestErrors:
    def test_unknown_namespace(self, remote):
        with pytest.raises(RemoteError) as exc:
            remote._call(frame.OP_GET, frame.encode_key(999, 1))
        assert exc.value.code == frame.ERR_UNKNOWN_NS

    def test_bad_opcode(self, remote):
        with pytest.raises(RemoteError) as exc:
            remote._call(77, b"")
        assert exc.value.code == frame.ERR_BAD_OPCODE

    def test_bad_payload(self, remote):
        with pytest.raises(RemoteError) as exc:
            remote._call(frame.OP_GET, b"\x01\x02")
        assert exc.value.code == frame.ERR_BAD_PAYLOAD

    def test_connection_survives_structured_errors(self, remote):
        for _ in range(3):
            with pytest.raises(RemoteError):
                remote._call(frame.OP_GET, frame.encode_key(999, 1))
        remote.insert(1, "still alive")
        assert remote.get(1) == "still alive"


class TestCoalescing:
    def _pipeline(self, server, coro_fn):
        async def go():
            client = await AsyncRemoteIndex.connect(
                server.host, server.port, "p"
            )
            try:
                return await coro_fn(client)
            finally:
                await client.close()

        return server.run(go())

    def test_pipelined_gets_are_batched(self):
        with ServerThread(config=ServerConfig(coalesce=True)) as st:
            async def go(client):
                futs = [client.submit_insert(k, k) for k in range(300)]
                await client._writer.drain()
                await asyncio.gather(*futs)
                futs = [client.submit_get(k) for k in range(300)]
                await client._writer.drain()
                payloads = await asyncio.gather(*futs)
                return [frame.decode_value(p) for p in payloads]

            values = self._pipeline(st, go)
            assert values == list(range(300))
            m = st.server.metrics
            assert m.batches_total["get"] >= 1
            assert m.batched_requests_total["get"] >= 300
            assert m.mean_batch_size("get") > 1

    def test_read_your_writes_order_preserved(self):
        """Interleaved insert/get on one connection must never reorder."""
        with ServerThread(config=ServerConfig(coalesce=True)) as st:
            async def go(client):
                futs = []
                for generation in range(5):
                    for k in range(50):
                        futs.append(
                            client.submit_insert(k, generation * 1000 + k)
                        )
                    for k in range(50):
                        futs.append(client.submit_get(k))
                await client._writer.drain()
                return await asyncio.gather(*futs)

            replies = self._pipeline(st, go)
            # Each get must observe the insert batch just before it.
            for generation in range(5):
                block = replies[generation * 100 + 50 : generation * 100 + 100]
                got = [frame.decode_value(p) for p in block]
                assert got == [generation * 1000 + k for k in range(50)]

    def test_bad_request_does_not_poison_batch(self):
        """A failing request coalesced into a run must error alone.

        2**63 is outside the default namespace codec's key range, so
        the batched ``get_many`` raises mid-run; the server must fall
        back to per-request execution (as the naive path would) rather
        than failing every coalesced request.
        """
        with ServerThread(config=ServerConfig(coalesce=True)) as st:
            async def go(client):
                futs = [client.submit_insert(k, k) for k in range(20)]
                await client._writer.drain()
                await asyncio.gather(*futs)
                futs = [client.submit_get(k) for k in range(10)]
                bad = client.submit_get(2**63)
                futs += [client.submit_get(k) for k in range(10, 20)]
                await client._writer.drain()
                good = await asyncio.gather(*futs)
                with pytest.raises(RemoteError) as exc:
                    await bad
                assert exc.value.code == frame.ERR_OP_FAILED
                return [frame.decode_value(p) for p in good]

            assert self._pipeline(st, go) == list(range(20))

    def test_multi_connection_batching(self):
        with ServerThread(config=ServerConfig(coalesce=True)) as st:
            async def go():
                clients = [
                    await AsyncRemoteIndex.connect(st.host, st.port, "p")
                    for _ in range(4)
                ]
                await clients[0].insert_many(list(range(100)),
                                             list(range(100)))

                async def read_all(c):
                    futs = [c.submit_get(k) for k in range(100)]
                    await c._writer.drain()
                    return await asyncio.gather(*futs)

                results = await asyncio.gather(*(read_all(c) for c in clients))
                for payloads in results:
                    assert [frame.decode_value(p) for p in payloads] == list(
                        range(100)
                    )
                for c in clients:
                    await c.close()

            st.run(go())


class TestDurableShutdown:
    def test_graceful_shutdown_checkpoints(self, tmp_path):
        directory = tmp_path / "srv"
        store = DurableKVStore(directory, fsync="never")
        st = ServerThread(store, config=ServerConfig(coalesce=True)).start()
        try:
            with RemoteIndex(st.host, st.port, "t") as idx:
                idx.insert_many(list(range(500)), [k * 2 for k in range(500)])
                idx.insert(999_999, "last")
        finally:
            st.stop()
        assert store.metrics.checkpoints_total >= 1
        with DurableKVStore(directory, fsync="never") as reopened:
            ns = reopened.namespace("t")
            assert len(ns) == 501
            assert ns.get(999_999) == "last"
            assert ns.get_many([0, 250, 499]) == [0, 500, 998]


    def test_shutdown_with_connected_clients(self):
        """Shutdown must not wait for connected clients to hang up.

        On Python >= 3.12.1 ``Server.wait_closed`` also waits for the
        connection-handler tasks, so shutdown must tear down client
        connections first or SIGTERM deadlocks with clients attached.
        """
        st = ServerThread(config=ServerConfig(coalesce=True)).start()
        idx = RemoteIndex(st.host, st.port, "t")
        try:
            idx.insert(1, "one")
            st.stop()
            assert not st._thread.is_alive()
        finally:
            idx.close()


class TestReplyDecoderBounds:
    """Truncated reply payloads must raise, never silently mis-decode.

    The regression: a value column truncated mid-value used to slice
    short and ``json.loads`` could parse a prefix (``b"123456"`` ->
    ``123``), returning wrong data instead of an error.
    """

    def test_values_reply_truncation_always_raises(self):
        raw = frame.encode_values([123456, "abc", None])
        assert frame.decode_values(raw) == [123456, "abc", None]
        for cut in range(len(raw)):
            with pytest.raises(frame.PayloadError):
                frame.decode_values(raw[:cut])

    def test_values_reply_trailing_bytes_raise(self):
        with pytest.raises(frame.PayloadError):
            frame.decode_values(frame.encode_values([1]) + b"x")

    def test_pairs_reply_truncation_always_raises(self):
        raw = frame.encode_pairs([(1, "a"), (2, 123456)])
        assert frame.decode_pairs(raw) == [(1, "a"), (2, 123456)]
        for cut in range(len(raw)):
            with pytest.raises(frame.PayloadError):
                frame.decode_pairs(raw[:cut])

    def test_pairs_reply_trailing_bytes_raise(self):
        with pytest.raises(frame.PayloadError):
            frame.decode_pairs(frame.encode_pairs([(1, "a")]) + b"\x00")


class TestAdminEndpoint:
    def test_metrics_scrape(self, server, remote):
        remote.insert_many(list(range(50)), list(range(50)))
        remote.get_many(list(range(50)))
        remote.get(1)
        url = f"http://{server.host}:{server.admin_port}"
        page = urllib.request.urlopen(f"{url}/metrics").read().decode()
        samples = parse_prometheus(page)
        total = "dytis_server_requests_total"
        assert samples[(total, (("op", "insert_many"),))] == 1
        assert samples[(total, (("op", "get_many"),))] == 1
        assert samples[(total, (("op", "get"),))] >= 1
        assert samples[("dytis_server_connections_open", ())] >= 1
        hist = "dytis_server_op_latency_ns_count"
        assert samples[(hist, (("op", "get"),))] >= 1

    def test_healthz_and_404(self, server):
        url = f"http://{server.host}:{server.admin_port}"
        assert urllib.request.urlopen(f"{url}/healthz").read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{url}/nope")

    def test_checkpoint_endpoint_runs_off_the_event_loop(self, tmp_path):
        """A store-level /checkpoint must not stall the data plane.

        With a remote attached a checkpoint can spend seconds in
        upload latency and retry backoff sleeps; it therefore runs on
        a worker thread.  Here the checkpoint is parked on an event
        and both planes are probed while it is provably in flight.
        """
        import threading

        store = DurableKVStore(tmp_path / "srv", fsync="never")
        entered = threading.Event()
        release = threading.Event()
        inner = store.checkpoint

        def slow_checkpoint():
            entered.set()
            release.wait(timeout=30.0)
            return inner()

        store.checkpoint = slow_checkpoint
        st = ServerThread(
            store, config=ServerConfig(coalesce=True, admin_port=0)
        ).start()
        try:
            with RemoteIndex(st.host, st.port, "t") as idx:
                idx.insert(1, "one")
                url = f"http://{st.host}:{st.admin_port}"
                resp = {}
                req = threading.Thread(
                    target=lambda: resp.setdefault(
                        "body",
                        urllib.request.urlopen(f"{url}/checkpoint").read(),
                    )
                )
                req.start()
                assert entered.wait(timeout=10.0)
                # The checkpoint is parked on its worker thread; the
                # loop must keep serving reads and admin probes.
                assert idx.get(1) == "one"
                assert (
                    urllib.request.urlopen(f"{url}/healthz").read() == b"ok\n"
                )
                release.set()
                req.join(timeout=10.0)
                assert resp["body"].startswith(b"checkpointed ")
        finally:
            release.set()
            st.stop()
        assert store.metrics.checkpoints_total >= 1


def test_server_wraps_bare_index():
    """index= takes any IndexProtocol implementation directly."""
    from repro.btree import BPlusTree

    with ServerThread(index=BPlusTree(), config=ServerConfig()) as st:
        with RemoteIndex(st.host, st.port, "t") as idx:
            idx.insert_many([3, 1, 2], ["c", "a", "b"])
            assert idx.scan_range(0, 10) == [(1, "a"), (2, "b"), (3, "c")]


def test_server_refuses_store_and_index():
    from repro.server import IndexServer

    with pytest.raises(ValueError):
        IndexServer(KVStore(), index=DyTIS())
