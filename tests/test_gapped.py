"""Tests for the ALEX-style gapped array (repro.learned.gapped)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned import GappedArray


class TestConstruction:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            GappedArray(0)

    def test_from_sorted_even_spread(self):
        ga = GappedArray.from_sorted([10, 20, 30], ["a", "b", "c"], 9)
        ga.check_invariants()
        assert ga.num_keys == 3
        assert ga.keys() == [10, 20, 30]
        assert ga.get(20) == "b"

    def test_from_sorted_with_positions(self):
        ga = GappedArray.from_sorted([1, 2, 3], [1, 2, 3], 10, positions=[0, 5, 9])
        ga.check_invariants()
        assert ga.occupied[0] and ga.occupied[5] and ga.occupied[9]

    def test_from_sorted_overflow(self):
        with pytest.raises(ValueError):
            GappedArray.from_sorted([1, 2, 3], [1, 2, 3], 2)

    def test_positions_clamped_monotone(self):
        # Colliding positions must still produce a valid layout.
        ga = GappedArray.from_sorted([1, 2, 3], [1, 2, 3], 8, positions=[4, 4, 4])
        ga.check_invariants()
        assert ga.keys() == [1, 2, 3]


class TestOperations:
    def test_insert_update_full(self):
        ga = GappedArray(4)
        assert ga.insert(5, "a") == "inserted"
        assert ga.insert(5, "b") == "updated"
        assert ga.get(5) == "b"
        for k in (1, 2, 3):
            assert ga.insert(k, k) == "inserted"
        assert ga.insert(9, 9) == "full"
        ga.check_invariants()

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            GappedArray(4).insert(-1, "x")

    def test_delete_rewrites_gap_run(self):
        ga = GappedArray.from_sorted([10, 20, 30], [1, 2, 3], 9)
        assert ga.delete(20)
        ga.check_invariants()
        assert ga.keys() == [10, 30]
        assert not ga.delete(20)

    def test_delete_first_key(self):
        ga = GappedArray.from_sorted([10, 20], [1, 2], 6)
        assert ga.delete(10)
        ga.check_invariants()
        assert ga.keys() == [20]

    def test_lower_bound(self):
        ga = GappedArray.from_sorted([10, 20, 30], [1, 2, 3], 12)
        assert ga.slots[ga.lower_bound(15)] == 20
        assert ga.slots[ga.lower_bound(20)] == 20
        assert ga.lower_bound(31) == ga.capacity

    def test_iter_from(self):
        ga = GappedArray.from_sorted([1, 5, 9], ["a", "b", "c"], 9)
        start = ga.lower_bound(4)
        assert list(ga.iter_from(start)) == [(5, "b"), (9, "c")]

    def test_hint_quality_irrelevant_to_correctness(self):
        ga = GappedArray.from_sorted(list(range(0, 100, 2)), list(range(50)), 100)
        for k in range(0, 100, 2):
            for hint in (0, 50, 99, None):
                assert ga.get(k, hint) == k // 2

    def test_shift_left_when_no_right_gap(self):
        # Fill the tail so inserting a large key must shift left.
        ga = GappedArray(6)
        for k in (10, 20, 30, 40, 50):
            ga.insert(k, k)
        ga.check_invariants()
        assert ga.insert(60, 60) == "inserted"
        ga.check_invariants()
        assert ga.keys() == [10, 20, 30, 40, 50, 60]


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(0, 60),
            st.integers(0, 31),
        ),
        max_size=250,
    )
)
@settings(max_examples=150, deadline=None)
def test_gapped_matches_dict_model(ops):
    """Property: gapped array behaves like a capacity-capped dict."""
    ga = GappedArray(32)
    model = {}
    for op, key, hint in ops:
        if op == "insert":
            result = ga.insert(key, key * 7, hint)
            if key in model:
                assert result == "updated"
            elif len(model) < 32:
                assert result == "inserted"
                model[key] = key * 7
            else:
                assert result == "full"
        elif op == "delete":
            assert ga.delete(key, hint) == (key in model)
            model.pop(key, None)
        else:
            assert ga.get(key, hint) == model.get(key)
        ga.check_invariants()
    assert ga.keys() == sorted(model)
