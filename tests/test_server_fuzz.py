"""Wire-protocol fuzzing: hostile bytes must never crash the server.

The contract under test (ISSUE 7, satellite 4): for any byte stream --
random garbage, truncated frames, bit-flipped valid frames, or valid
frames with junk opcodes/payloads -- the server either sends a
structured error reply or closes the connection cleanly, and it keeps
serving well-formed clients afterwards.  The event loop itself must
survive everything.
"""

import random
import socket

import pytest

from repro.server import RemoteIndex, ServerConfig, ServerThread, frame


@pytest.fixture(scope="module")
def server():
    with ServerThread(config=ServerConfig(coalesce=True)) as st:
        yield st


def _raw(server):
    sock = socket.create_connection((server.host, server.port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def _read_until_close(sock, limit=1 << 20):
    """Drain whatever the server sends until it closes (or times out)."""
    out = b""
    try:
        while len(out) < limit:
            chunk = sock.recv(65536)
            if not chunk:
                break
            out += chunk
    except socket.timeout:
        pass
    return out


def _assert_still_serving(server):
    with RemoteIndex(server.host, server.port, "live") as idx:
        idx.insert(1, "ok")
        assert idx.get(1) == "ok"


def test_random_garbage_streams(server):
    rng = random.Random(0xFE)
    for trial in range(20):
        sock = _raw(server)
        try:
            sock.sendall(rng.randbytes(rng.randrange(1, 4096)))
            sock.shutdown(socket.SHUT_WR)
            data = _read_until_close(sock)
        finally:
            sock.close()
        if data:
            # Any reply must be a well-formed structured error frame.
            frames = frame.FrameDecoder().feed(data)
            for _, op, payload in frames:
                assert op == frame.OP_ERR
                code, _msg = frame.decode_err(payload)
                assert code in frame.ERR_NAMES
    _assert_still_serving(server)


def test_truncated_frames(server):
    rng = random.Random(0xAB)
    whole = frame.encode_frame(1, frame.OP_GET, frame.encode_key(0, 5))
    for cut in sorted(rng.sample(range(1, len(whole)), 8)):
        sock = _raw(server)
        try:
            sock.sendall(whole[:cut])
            sock.shutdown(socket.SHUT_WR)
            # A partial frame is not an error: the server just sees EOF
            # mid-frame and drops the connection without a reply.
            data = _read_until_close(sock)
        finally:
            sock.close()
        for _, op, _payload in frame.FrameDecoder().feed(data):
            assert op == frame.OP_ERR
    _assert_still_serving(server)


def test_bit_flipped_frames(server):
    rng = random.Random(0xC4)
    with RemoteIndex(server.host, server.port, "fuzz") as idx:
        ns_id = idx.ns_id
    good = frame.encode_frame(7, frame.OP_GET, frame.encode_key(ns_id, 42))
    for trial in range(30):
        corrupt = bytearray(good)
        pos = rng.randrange(len(corrupt))
        corrupt[pos] ^= 1 << rng.randrange(8)
        sock = _raw(server)
        try:
            sock.sendall(bytes(corrupt))
            sock.shutdown(socket.SHUT_WR)
            data = _read_until_close(sock, limit=1 << 16)
        finally:
            sock.close()
        if data:
            try:
                frames = frame.FrameDecoder().feed(data)
            except frame.FrameError:
                continue  # reply got interleaved with closing; fine
            for _, op, payload in frames:
                if op == frame.OP_ERR:
                    code, _msg = frame.decode_err(payload)
                    assert code in frame.ERR_NAMES
    _assert_still_serving(server)


def test_valid_frames_random_opcodes_and_payloads(server):
    """Well-framed junk: every frame gets a reply, none kills the loop."""
    rng = random.Random(0x51)
    sock = _raw(server)
    decoder = frame.FrameDecoder()
    try:
        n_sent = 40
        for rid in range(1, n_sent + 1):
            opcode = rng.choice(
                list(frame.OP_NAMES) + [0, 99, 200, 255]
            )
            payload = rng.randbytes(rng.randrange(0, 64))
            sock.sendall(frame.encode_frame(rid, opcode, payload))
        replies = []
        while len(replies) < n_sent:
            data = sock.recv(65536)
            if not data:
                break
            replies.extend(decoder.feed(data))
        assert len(replies) == n_sent
        for rid, op, payload in replies:
            assert op in (frame.OP_OK, frame.OP_ERR)
            if op == frame.OP_ERR:
                code, _msg = frame.decode_err(payload)
                assert code in frame.ERR_NAMES
    finally:
        sock.close()
    _assert_still_serving(server)


def test_oversized_length_prefix(server):
    sock = _raw(server)
    try:
        sock.sendall(b"\xff\xff\xff\xff" + b"x" * 64)
        sock.shutdown(socket.SHUT_WR)
        data = _read_until_close(sock, limit=1 << 16)
    finally:
        sock.close()
    frames = frame.FrameDecoder().feed(data)
    assert len(frames) == 1
    _rid, op, payload = frames[0]
    assert op == frame.OP_ERR
    code, _msg = frame.decode_err(payload)
    assert code == frame.ERR_BAD_FRAME
    _assert_still_serving(server)


def test_server_metrics_count_fuzz_errors(server):
    assert sum(server.server.metrics.errors_total.values()) > 0
