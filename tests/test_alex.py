"""Tests for the ALEX-like adaptive learned index (repro.learned.alex)."""

import pytest

from repro.learned import AlexIndex


class TestBulkLoad:
    def test_bulk_load_roundtrip(self, rng):
        keys = rng.sample(range(2**40), 5000)
        idx = AlexIndex()
        idx.bulk_load(keys, [k + 1 for k in keys])
        assert len(idx) == len(keys)
        for k in keys[::11]:
            assert idx.get(k) == k + 1

    def test_bulk_load_unsorted_input_ok(self):
        idx = AlexIndex()
        idx.bulk_load([5, 1, 9], ["b", "a", "c"])
        assert [k for k, _ in idx.items()] == [1, 5, 9]

    def test_bulk_load_builds_tree_for_large_inputs(self, rng):
        keys = rng.sample(range(2**40), 20000)
        idx = AlexIndex()
        idx.bulk_load(keys, keys)
        assert idx.depth() >= 2
        assert idx.node_count() > 1

    def test_empty_bulk_load(self):
        idx = AlexIndex()
        idx.bulk_load([], [])
        assert len(idx) == 0
        assert idx.get(5) is None


class TestAdaptiveInserts:
    def test_insert_without_bulk_load(self, rng):
        idx = AlexIndex()
        keys = rng.sample(range(2**40), 3000)
        for k in keys:
            idx.insert(k, k)
        assert len(idx) == len(keys)
        assert [k for k, _ in idx.items()] == sorted(keys)

    def test_expansion_and_split_counters(self, rng):
        idx = AlexIndex()
        for k in rng.sample(range(2**40), 12000):
            idx.insert(k, k)
        assert idx.expand_count > 0
        assert idx.split_count > 0  # nodes beyond max size must split

    def test_in_place_update(self):
        idx = AlexIndex()
        idx.insert(5, "a")
        idx.insert(5, "b")
        assert idx.get(5) == "b"
        assert len(idx) == 1

    def test_skewed_inserts_after_bulk_load(self, rng):
        """Inserting into one hot region forces local adaptation."""
        base = rng.sample(range(2**40), 5000)
        idx = AlexIndex()
        idx.bulk_load(base, base)
        hot = [2**20 + i for i in range(5000) if 2**20 + i not in set(base)]
        for k in hot:
            idx.insert(k, k)
        assert len(idx) == len(base) + len(hot)
        assert [k for k, _ in idx.items()] == sorted(set(base) | set(hot))


class TestScanDelete:
    def test_scan_matches_reference(self, rng):
        keys = rng.sample(range(2**40), 4000)
        idx = AlexIndex()
        idx.bulk_load(keys[:2000], keys[:2000])
        for k in keys[2000:]:
            idx.insert(k, k)
        ref = sorted(keys)
        assert [k for k, _ in idx.scan(ref[100], 200)] == ref[100:300]

    def test_scan_across_node_boundaries(self, rng):
        keys = rng.sample(range(2**40), 15000)
        idx = AlexIndex()
        idx.bulk_load(keys, keys)
        ref = sorted(keys)
        assert [k for k, _ in idx.scan(ref[0], 6000)] == ref[:6000]

    def test_delete(self, rng):
        keys = rng.sample(range(2**40), 2000)
        idx = AlexIndex()
        idx.bulk_load(keys, keys)
        for k in keys[:500]:
            assert idx.delete(k)
        assert not idx.delete(keys[0])
        assert len(idx) == 1500
        assert [k for k, _ in idx.items()] == sorted(keys[500:])


class TestStructure:
    def test_model_count_reported(self, rng):
        idx = AlexIndex()
        idx.bulk_load(rng.sample(range(2**40), 10000), [0] * 10000)
        assert idx.model_count() == idx.node_count() > 1

    def test_bulk_loaded_depth_persists(self, rng):
        """The paper: ALEX 'vigorously deters' increasing bulk-load depth."""
        keys = rng.sample(range(2**40), 10000)
        idx = AlexIndex()
        idx.bulk_load(keys[:7000], keys[:7000])
        d0 = idx.depth()
        for k in keys[7000:]:
            idx.insert(k, k)
        assert idx.depth() <= d0 + 1
