"""Differential tests for the two segment storage engines.

The list-of-buckets engine is the reference; the columnar engine must
be observationally identical through the whole DyTIS API.  A lockstep
fuzz drives both engines plus a shadow dict through >= 10k mixed
operations and compares every result; unit tests pin down the columnar
engine's sentinel-padding slack policy, its vectorised search paths
(including the 2^64-1 sentinel-as-real-key edge), the fused read
column's epoch invalidation, and the invariant checker's failure modes.
"""

import random

import numpy as np
import pytest

from repro.core import (
    ColumnarStorage,
    DyTIS,
    DyTISConfig,
    InvariantViolation,
    ListStorage,
    check_invariants,
    make_storage,
)
from repro.core.storage import _MAX_KEY

KEY_BITS = 32
KEY_SPACE = 1 << KEY_BITS


def _config(storage):
    return DyTISConfig(
        key_bits=KEY_BITS,
        first_level_bits=4,
        bucket_capacity=8,
        l_start=2,
        storage=storage,
    )


# ---------------------------------------------------------------------------
# Lockstep differential fuzz: lists vs columnar vs shadow dict
# ---------------------------------------------------------------------------


def test_lockstep_fuzz_10k_ops():
    """>= 10k random ops applied to both engines and a dict, in lockstep.

    Every operation's result is compared across all three; structural
    invariants are re-checked periodically (structure ops -- split,
    remap, expand, merge -- fire constantly at bucket_capacity=8).
    """
    rng = random.Random(0x5E9)
    engines = {s: DyTIS(_config(s)) for s in ("lists", "columnar")}
    shadow = {}
    live = []  # keys currently present (with duplicates pruned lazily)

    def random_key():
        if live and rng.random() < 0.6:
            return live[rng.randrange(len(live))]
        return rng.randrange(KEY_SPACE)

    n_ops = 10_000
    for step in range(n_ops):
        r = rng.random()
        if r < 0.35:  # insert / update
            k = random_key()
            v = rng.randrange(1 << 30)
            for ix in engines.values():
                ix.insert(k, v)
            if k not in shadow:
                live.append(k)
            shadow[k] = v
        elif r < 0.45:  # insert_many: splice planner vs per-bucket loop
            batch = [
                (random_key(), rng.randrange(1 << 30))
                for _ in range(rng.randrange(1, 96))
            ]
            for ix in engines.values():
                ix.insert_many(batch)
            for k, v in batch:
                if k not in shadow:
                    live.append(k)
                shadow[k] = v
        elif r < 0.52:  # delete_many with hits and misses
            batch = [random_key() for _ in range(rng.randrange(1, 48))]
            expect = len({k for k in batch if k in shadow})
            for name, ix in engines.items():
                assert ix.delete_many(batch) == expect, (step, name)
            for k in batch:
                shadow.pop(k, None)
        elif r < 0.62:  # get
            k = random_key()
            expect = shadow.get(k)
            for name, ix in engines.items():
                assert ix.get(k) == expect, (step, name, k)
        elif r < 0.70:  # delete
            k = random_key()
            expect = k in shadow
            for name, ix in engines.items():
                assert ix.delete(k) == expect, (step, name, k)
            shadow.pop(k, None)
        elif r < 0.78:  # get_many with hits and misses
            batch = [random_key() for _ in range(64)]
            expect = [shadow.get(k) for k in batch]
            for name, ix in engines.items():
                assert ix.get_many(batch) == expect, (step, name)
        elif r < 0.86:  # scan
            start = rng.randrange(KEY_SPACE)
            count = rng.randrange(1, 200)
            expect = sorted((k, v) for k, v in shadow.items() if k >= start)
            expect = expect[:count]
            for name, ix in engines.items():
                assert ix.scan(start, count) == expect, (step, name)
        elif r < 0.94:  # scan_range + count_range on the same bounds
            lo = rng.randrange(KEY_SPACE)
            hi = lo + rng.randrange(1, KEY_SPACE // 64)
            expect = sorted(
                (k, v) for k, v in shadow.items() if lo <= k < hi
            )
            for name, ix in engines.items():
                assert ix.scan_range(lo, hi) == expect, (step, name)
                assert ix.count_range(lo, hi) == len(expect), (step, name)
        else:  # delete_range (small spans; exercises merge-down)
            lo = rng.randrange(KEY_SPACE)
            hi = lo + rng.randrange(1, KEY_SPACE // 256)
            victims = [k for k in shadow if lo <= k < hi]
            for name, ix in engines.items():
                assert ix.delete_range(lo, hi) == len(victims), (step, name)
            for k in victims:
                del shadow[k]

        if step % 2000 == 1999:
            live = [k for k in set(live) if k in shadow]
            for name, ix in engines.items():
                assert len(ix) == len(shadow), (step, name)
                check_invariants(ix)

    for name, ix in engines.items():
        assert len(ix) == len(shadow), name
        check_invariants(ix)
        assert sorted(shadow) == [k for k, _ in ix.scan_range(0, KEY_SPACE)]


def test_bulk_load_then_mutate_differential(rng):
    """Bulk-loaded indexes under both engines agree after mutation."""
    keys = rng.sample(range(KEY_SPACE), 4000)
    engines = {}
    for s in ("lists", "columnar"):
        ix = DyTIS(_config(s))
        ix.bulk_load(keys, [k * 2 for k in keys])
        engines[s] = ix
    shadow = {k: k * 2 for k in keys}
    for k in keys[:500]:
        for ix in engines.values():
            ix.delete(k)
        del shadow[k]
    for k in range(0, 50_000, 7):
        for ix in engines.values():
            ix.insert(k, k + 1)
        shadow[k] = k + 1
    expect = sorted(shadow.items())
    for name, ix in engines.items():
        check_invariants(ix)
        assert ix.scan_range(0, KEY_SPACE) == expect, name
        probe = [k for k, _ in expect[::17]] + [1, 3, KEY_SPACE - 1]
        assert ix.get_many(probe) == [shadow.get(k) for k in probe], name


# ---------------------------------------------------------------------------
# Columnar engine internals: sentinel padding, vectorised search
# ---------------------------------------------------------------------------


def test_columnar_key_column_stays_nondecreasing():
    """The whole key column is non-decreasing across bucket boundaries:
    slack slots are back-filled with the next live key (or the 2^64-1
    sentinel past the last), which is what lets one bisect over the raw
    padded column answer point lookups."""
    st = ColumnarStorage(n_buckets=4, capacity=4)
    # Route keys to buckets in sorted-region order, as DyTIS would.
    for b, key in [(0, 10), (0, 20), (1, 100), (2, 200), (3, 300)]:
        assert st.insert(b, key, key) == "inserted"
    col = st.keys.tolist()
    assert col == sorted(col)
    # Slack in bucket 0 holds the next live key (100), not garbage.
    assert col[2] == 100 and col[3] == 100
    # Trailing slack carries the sentinel.
    assert col[-1] == _MAX_KEY
    st.check_invariants()
    # Deleting refills the freed slot from the right neighbour.
    assert st.delete(1, 100)
    col = st.keys.tolist()
    assert col == sorted(col)
    st.check_invariants()


def test_columnar_probe_key_and_sentinel_edge():
    st = ColumnarStorage(n_buckets=1, capacity=8)
    st.insert(0, 5, "five")
    st.insert(0, 9, "nine")
    assert st.probe_key(5) == (True, "five")
    assert st.probe_key(9) == (True, "nine")
    assert st.probe_key(7) == (False, None)
    # 2^64-1 collides with the slack sentinel: a padded slot can equal
    # the query, so the probe must still resolve via the live prefix.
    assert st.probe_key(_MAX_KEY) == (False, None)
    st.insert(0, _MAX_KEY, "max")
    assert st.probe_key(_MAX_KEY) == (True, "max")
    st.check_invariants()


def test_columnar_find_many_sorted():
    st = ColumnarStorage(n_buckets=2, capacity=4)
    for b, key in [(0, 1), (0, 3), (1, 10), (1, 12)]:
        st.insert(b, key, key * 10)
    queries = np.array([0, 1, 2, 3, 10, 12, 13, _MAX_KEY], dtype=np.uint64)
    out = [None] * len(queries)
    st.find_many_sorted(queries, out, list(range(len(queries))))
    assert out == [None, 10, None, 30, 100, 120, None, None]
    # Large batches take the vectorised path (> 16 queries).
    big = np.array(sorted([1, 3, 10, 12] * 5 + [7] * 10), dtype=np.uint64)
    out = [None] * big.size
    st.find_many_sorted(big, out, list(range(big.size)))
    expect = [{1: 10, 3: 30, 10: 100, 12: 120}.get(int(k)) for k in big]
    assert out == expect


def test_columnar_gapped_slack_after_fill_sorted():
    """fill_sorted leaves per-bucket gaps (slack) and pads them so the
    column stays sorted; inserts then land in the slack without
    spilling into neighbouring buckets."""
    st = ColumnarStorage(n_buckets=2, capacity=4)
    st.fill_sorted([2, 2], [1, 2, 10, 11], ["a", "b", "c", "d"])
    assert st.bucket_len(0) == 2 and st.bucket_len(1) == 2
    assert st.keys.tolist() == [1, 2, 10, 10, 10, 11, _MAX_KEY, _MAX_KEY]
    assert st.insert(0, 5, "e") == "inserted"
    assert st.probe_key(5) == (True, "e")
    st.check_invariants()
    assert st.keys.tolist()[:3] == [1, 2, 5]


# ---------------------------------------------------------------------------
# Splice planner property tests
# ---------------------------------------------------------------------------


def test_splice_partition_covers_each_key_exactly_once(rng):
    """Every batch key is accounted for exactly once across segment
    boundaries: inserted, updated in place, or spilled to overflow --
    and the index afterwards holds exactly the shadow's content."""
    ix = DyTIS(_config("columnar"))
    seed = rng.sample(range(KEY_SPACE), 3000)
    ix.bulk_load(seed, seed)
    shadow = dict(zip(seed, seed))
    for round_ in range(20):
        # Mix fresh keys with updates so groups straddle many segments.
        batch_keys = rng.sample(range(KEY_SPACE), 200) + rng.sample(seed, 100)
        batch = [(k, (round_, k)) for k in batch_keys]
        fresh = len(set(batch_keys) - shadow.keys())
        before = len(ix)
        ix.insert_many(batch)
        for k, v in batch:
            shadow[k] = v
        # Size moved by exactly the genuinely-new keys: nothing was
        # double-inserted at a segment boundary, nothing was dropped.
        assert len(ix) - before == fresh, round_
        assert len(ix) == len(shadow), round_
        probe = batch_keys + rng.sample(range(KEY_SPACE), 50)
        assert ix.get_many(probe) == [shadow.get(k) for k in probe], round_
    check_invariants(ix)
    assert sorted(shadow) == [k for k, _ in ix.scan_range(0, KEY_SPACE)]


def test_splice_padding_invariant_after_every_batch(rng):
    """The sentinel-padded key column stays non-decreasing after every
    splice: check_invariants (which asserts exactly that, per segment)
    runs after each batched insert and delete."""
    ix = DyTIS(_config("columnar"))
    keys = rng.sample(range(KEY_SPACE), 1500)
    ix.bulk_load(keys, keys)
    pool = list(keys)
    for round_ in range(25):
        batch = [
            (k, k ^ round_)
            for k in rng.sample(range(KEY_SPACE), 120) + rng.sample(pool, 40)
        ]
        ix.insert_many(batch)
        pool.extend(k for k, _ in batch)
        check_invariants(ix)
        victims = rng.sample(pool, 60)
        ix.delete_many(victims)
        pool = [k for k in pool if k in ix]
        check_invariants(ix)


# ---------------------------------------------------------------------------
# Fused read column: incremental repair vs structural invalidation
# ---------------------------------------------------------------------------


def _rebuild_patch_counts(ix):
    bus = ix.obs.events
    return bus.counts["fused_rebuild"], bus.counts["fused_patch"]


def test_fused_column_patched_not_rebuilt_after_local_writes(rng):
    """A segment-local write batch must NOT trigger a fused-column
    rebuild: the affected slices are patched in place, counted via the
    structural event bus."""
    from repro.obs import Observability

    obs = Observability(enabled=True)
    ix = DyTIS(_config("columnar"), obs=obs)
    keys = rng.sample(range(KEY_SPACE), 4000)
    ix.bulk_load(keys, keys)
    vmap = {k: k for k in keys}
    big = keys[:2000]  # large batch: always worth patching for
    probe = keys[:200]
    assert ix.get_many(big) == big  # builds the fused column
    rebuilds0, patches0 = _rebuild_patch_counts(ix)
    assert rebuilds0 >= 1

    # Value-only upsert batch: no new keys, nothing structural.
    upd = [(k, -k) for k in probe[:50]]
    ix.insert_many(upd)
    vmap.update(dict(upd))
    # A small read while many segments are dirty takes the routed
    # probe path: fresh answers, but neither a patch nor a rebuild.
    assert ix.get_many(probe[:20]) == [vmap[k] for k in probe[:20]]
    assert _rebuild_patch_counts(ix) == (rebuilds0, patches0)
    # A large read repairs the dirty slices in place -- no rebuild.
    assert ix.get_many(big) == [vmap[k] for k in big]
    rebuilds1, patches1 = _rebuild_patch_counts(ix)
    assert rebuilds1 == rebuilds0, "value-only batch must not rebuild"
    assert patches1 == patches0 + 1

    # Small insert batch into existing segments, picking keys whose
    # target bucket has slack so no restructure (and thus no rebuild)
    # can fire.
    room: dict = {}

    def _absorbable(k):
        table = ix._tables[k >> ix._m]
        if table is None:
            return False  # would create a table: structural
        seg = table.segment_for(k & ix._local_mask, ix._m)
        lk = np.uint64(k) & np.uint64(seg._mask)
        b = int(seg.remap.bucket_indices(np.array([lk], dtype=np.uint64))[0])
        slot = (id(seg), b)
        left = room.setdefault(slot, seg.store.capacity - seg.store.counts[b])
        if left <= 0:
            return False
        room[slot] = left - 1
        return True

    fresh = [
        k
        for k in rng.sample(range(KEY_SPACE), 600)
        if k not in ix and _absorbable(k)
    ][:40]
    assert len(fresh) == 40
    ix.insert_many([(k, k + 1) for k in fresh])
    vmap.update((k, k + 1) for k in fresh)
    assert ix.get_many(big) == [vmap[k] for k in big]  # patches
    assert ix.get_many(fresh) == [k + 1 for k in fresh]  # now-clean fused
    rebuilds2, patches2 = _rebuild_patch_counts(ix)
    assert rebuilds2 == rebuilds0, "segment-local inserts must not rebuild"
    assert patches2 == patches1 + 1

    # Scalar delete: no rebuild either (no merge at this size).
    ix.delete(probe[0])
    assert ix.get_many(probe[:2]) == [None, vmap[probe[1]]]
    rebuilds3, _ = _rebuild_patch_counts(ix)
    assert rebuilds3 == rebuilds0
    check_invariants(ix)


def test_fused_cache_consistency_across_mutations(rng):
    """The patched fused column serves exactly the same answers as a
    cold rebuild across value updates, deletes, batches, and ranges."""
    ix = DyTIS(_config("columnar"))
    keys = rng.sample(range(KEY_SPACE), 2000)
    ix.bulk_load(keys, keys)
    probe = keys[:100]
    assert ix.get_many(probe) == probe  # builds the fused column
    assert ix._fused is not None and ix._fused.epoch == ix._mut_epoch

    ix.insert(keys[0], -1)  # in-place value update: patched, not rebuilt
    assert ix._fused.epoch == ix._mut_epoch
    assert ix.get_many(probe) == [-1] + probe[1:]

    ix.delete(keys[1])
    assert ix.get_many(probe) == [-1, None] + probe[2:]

    ix.scan(0, 10)  # warms the live-compacted companion
    ix.insert_many([(k, 0) for k in probe[2:4]])
    assert ix.get_many(probe) == [-1, None, 0, 0] + probe[4:]
    assert ix.scan(min(probe[2:4]), 1) == [(min(probe[2:4]), 0)]

    lo = sorted(keys)[500]
    hi = sorted(keys)[600]
    ix.delete_range(lo, hi)
    assert ix.count_range(lo, hi) == 0
    # A cold index over the same content answers identically.
    cold = DyTIS(_config("columnar"))
    content = ix.scan_range(0, KEY_SPACE)
    cold.bulk_load([k for k, _ in content], [v for _, v in content])
    assert cold.get_many(probe) == ix.get_many(probe)


# ---------------------------------------------------------------------------
# Config plumbing, memory accounting, invariant failures
# ---------------------------------------------------------------------------


def test_storage_env_default(monkeypatch):
    monkeypatch.setenv("DYTIS_STORAGE", "columnar")
    assert DyTISConfig().storage == "columnar"
    monkeypatch.delenv("DYTIS_STORAGE")
    assert DyTISConfig().storage == "lists"
    monkeypatch.setenv("DYTIS_STORAGE", "nonsense")
    with pytest.raises(ValueError):
        DyTIS(DyTISConfig())


def test_make_storage_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_storage("btree", 4, 8)
    assert isinstance(make_storage("lists", 4, 8), ListStorage)
    assert isinstance(make_storage("columnar", 4, 8), ColumnarStorage)


def test_columnar_memory_smaller_for_int_payloads(rng):
    keys = rng.sample(range(KEY_SPACE), 5000)
    sizes = {}
    for s in ("lists", "columnar"):
        ix = DyTIS(_config(s))
        ix.bulk_load(keys, keys)
        sizes[s] = ix.memory_bytes()
        assert "storage" in ix.describe()
    # Unboxed uint64 keys beat per-bucket lists of boxed ints even
    # though the columnar engine pays for its slack slots up front.
    assert sizes["columnar"] < sizes["lists"]


def test_invariant_violation_on_corruption():
    st = ColumnarStorage(n_buckets=2, capacity=4)
    for b, key in [(0, 1), (0, 3), (1, 10)]:
        st.insert(b, key, key)
    st.check_invariants()
    st.keys[0], st.keys[1] = st.keys[1].copy(), st.keys[0].copy()  # unsort
    with pytest.raises(InvariantViolation):
        st.check_invariants()

    ls = ListStorage(n_buckets=2, capacity=4)
    ls.insert(0, 1, 1)
    ls.insert(0, 3, 3)
    ls.check_invariants()
    ls.buckets[0].keys.reverse()
    with pytest.raises(InvariantViolation):
        ls.check_invariants()


def test_index_level_invariants_catch_storage_corruption(rng):
    ix = DyTIS(_config("columnar"))
    keys = rng.sample(range(KEY_SPACE), 1000)
    ix.bulk_load(keys, keys)
    check_invariants(ix)
    # Break one segment's count metadata.
    table = next(t for t in ix._tables if t is not None)
    seg = next(table.unique_segments())
    store = seg.store
    b = next(i for i in range(store.n_buckets) if store.counts[i])
    store.counts[b] += 1
    with pytest.raises(InvariantViolation):
        check_invariants(ix)
