"""Tests for the DyTIS index (repro.core.dytis)."""

import random

import pytest

from repro.core import DyTIS, DyTISConfig


@pytest.fixture
def index(small_config):
    return DyTIS(small_config)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = DyTISConfig()
        assert cfg.key_bits == 64
        assert cfg.first_level_bits == 9
        assert cfg.bucket_capacity == 128
        assert cfg.util_threshold == 0.6
        assert cfg.l_start == 6
        assert cfg.seg_limit_factor == 2
        assert cfg.seg_limit_boost == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            DyTISConfig(key_bits=0)
        with pytest.raises(ValueError):
            DyTISConfig(first_level_bits=64)
        with pytest.raises(ValueError):
            DyTISConfig(bucket_capacity=1)
        with pytest.raises(ValueError):
            DyTISConfig(util_threshold=0.0)
        with pytest.raises(ValueError):
            DyTISConfig(l_start=-1)

    def test_segment_cap_schedule(self):
        cfg = DyTISConfig(l_start=6)
        assert cfg.segment_cap(5, boosted=False) == 1  # basic EH phase
        assert cfg.segment_cap(6, boosted=False) == 2
        assert cfg.segment_cap(8, boosted=False) == 8
        assert cfg.segment_cap(8, boosted=True) == 512


class TestBasicOperations:
    def test_empty_index(self, index):
        assert len(index) == 0
        assert index.get(42) is None
        assert 42 not in index
        assert index.scan(0, 10) == []
        assert list(index.items()) == []
        assert not index.delete(42)

    def test_insert_get(self, index):
        index.insert(100, "v")
        assert index.get(100) == "v"
        assert 100 in index
        assert len(index) == 1

    def test_in_place_update(self, index):
        index.insert(5, "a")
        index.insert(5, "b")
        assert index.get(5) == "b"
        assert len(index) == 1

    def test_key_range_validation(self, index):
        with pytest.raises(ValueError):
            index.insert(-1, "x")
        with pytest.raises(ValueError):
            index.insert(2**32, "x")
        with pytest.raises(ValueError):
            index.get(2**40)

    def test_boundary_keys(self, index):
        index.insert(0, "zero")
        index.insert(2**32 - 1, "max")
        assert index.get(0) == "zero"
        assert index.get(2**32 - 1) == "max"
        assert [k for k, _ in index.items()] == [0, 2**32 - 1]

    def test_none_values_storable(self, index):
        # get returning None is 'not exist', but contains still works.
        index.insert(7, None)
        assert 7 in index
        assert len(index) == 1


class TestBulkBehaviour:
    def test_many_inserts_roundtrip(self, index, sample_keys):
        for i, k in enumerate(sample_keys):
            index.insert(k, i)
        assert len(index) == len(sample_keys)
        index.check_invariants()
        for i, k in enumerate(sample_keys):
            assert index.get(k) == i

    def test_items_sorted(self, index, sample_keys):
        for k in sample_keys:
            index.insert(k, k)
        assert [k for k, _ in index.items()] == sorted(sample_keys)

    def test_sequential_keys(self, index):
        for k in range(6000):
            index.insert(k, k)
        index.check_invariants()
        assert [k for k, _ in index.items()] == list(range(6000))

    def test_reverse_sequential(self, index):
        for k in reversed(range(6000)):
            index.insert(k, k)
        index.check_invariants()
        assert len(index) == 6000

    def test_clustered_keys(self, index, rng):
        keys = set()
        while len(keys) < 6000:
            c = rng.randrange(0, 2**32, 2**20)
            keys.add(c + rng.randrange(2**10))
        for k in keys:
            index.insert(k, k)
        index.check_invariants()
        assert [k for k, _ in index.items()] == sorted(keys)

    def test_structural_stats_populated(self, index, sample_keys):
        for k in sample_keys:
            index.insert(k, k)
        s = index.stats
        assert s.splits > 0
        assert s.structural_ops() == s.splits + s.expansions + s.remappings + s.doublings
        assert s.keys_moved > 0
        assert 0.99 <= sum(s.breakdown().values()) <= 1.01


class TestScan:
    def test_scan_matches_sorted_reference(self, index, sample_keys):
        for k in sample_keys:
            index.insert(k, k)
        ref = sorted(sample_keys)
        for start_idx in (0, 100, 2500, len(ref) - 50):
            start = ref[start_idx]
            got = index.scan(start, 100)
            assert [k for k, _ in got] == ref[start_idx : start_idx + 100]

    def test_scan_from_nonexistent_key(self, index, sample_keys):
        for k in sample_keys:
            index.insert(k, k)
        ref = sorted(sample_keys)
        start = ref[1000] + 1
        while start in set(ref):
            start += 1
        import bisect
        i = bisect.bisect_left(ref, start)
        assert [k for k, _ in index.scan(start, 50)] == ref[i : i + 50]

    def test_scan_past_end(self, index):
        index.insert(10, 10)
        assert index.scan(11, 5) == []

    def test_scan_crosses_eh_tables(self, index):
        # Keys in different first-level tables (top 4 of 32 bits differ).
        keys = [t << 28 | 5 for t in range(10)]
        for k in keys:
            index.insert(k, k)
        got = index.scan(0, 10)
        assert [k for k, _ in got] == sorted(keys)

    def test_scan_count_zero(self, index):
        index.insert(1, 1)
        assert index.scan(0, 0) == []

    def test_scan_returns_values(self, index):
        index.insert(3, "three")
        index.insert(4, "four")
        assert index.scan(3, 2) == [(3, "three"), (4, "four")]


class TestDelete:
    def test_delete_roundtrip(self, index, sample_keys):
        for k in sample_keys:
            index.insert(k, k)
        victims = sample_keys[::3]
        for k in victims:
            assert index.delete(k)
        assert len(index) == len(sample_keys) - len(victims)
        index.check_invariants()
        survivors = sorted(set(sample_keys) - set(victims))
        assert [k for k, _ in index.items()] == survivors

    def test_merge_down_shrinks_segments(self, small_config):
        index = DyTIS(small_config)
        keys = list(range(0, 8000))
        for k in keys:
            index.insert(k, k)
        buckets_before = index.bucket_count()
        for k in keys[:7600]:
            index.delete(k)
        index.check_invariants()
        assert index.stats.merges > 0
        assert index.bucket_count() < buckets_before

    def test_dense_delete_terminates(self):
        """Regression: buddy-merging to a shallower depth widens the key
        domain, and for dense keys no compact layout exists at *any*
        bucket count -- the bounded rebuild must give up (returning the
        segments unmerged) rather than growing forever.  Default config
        so the 64-bit domain makes the merge infeasible."""
        index = DyTIS()
        for k in range(2000):
            index.insert(k, k)
        for k in range(1000, 1500):
            assert index.delete(k)
        assert index.delete_range(0, 500) == 500
        index.check_invariants()
        assert len(index) == 1000

    def test_delete_then_reinsert(self, index):
        index.insert(9, "a")
        index.delete(9)
        index.insert(9, "b")
        assert index.get(9) == "b"
        assert len(index) == 1


class TestAlgorithmOne:
    def test_basic_phase_single_bucket_segments(self, small_config):
        """Below L_start segments are single buckets (basic EH)."""
        index = DyTIS(small_config)
        for k in range(small_config.bucket_capacity + 1):
            index.insert(k, k)
        for table in index._tables:
            if table is None:
                continue
            for seg in table.unique_segments():
                if seg.local_depth < small_config.l_start:
                    assert seg.n_buckets == 1

    def test_remapping_triggers_on_skew(self, small_config):
        index = DyTIS(small_config)
        # Dense cluster inside one EH table forces low-util/full-bucket.
        for k in range(4000):
            index.insert(k, k)
        assert index.stats.remappings + index.stats.expansions > 0

    def test_boost_decision_on_uniform(self, small_config, rng):
        index = DyTIS(small_config)
        for k in rng.sample(range(2**32), 20000):
            index.insert(k, k)
        assert index._boost_decided
        assert index._boosted  # uniform data is expansion-heavy

    def test_caps_respected_outside_safety_valve(self, small_config, rng):
        index = DyTIS(small_config)
        for k in rng.sample(range(2**32), 10000):
            index.insert(k, k)
        cfg = small_config
        for table in index._tables:
            if table is None:
                continue
            for seg in table.unique_segments():
                cap = cfg.segment_cap(seg.local_depth, index._boosted)
                # The safety valve may exceed cap transiently; it must be rare.
                assert seg.n_buckets <= max(cap, 4 * cap)


class TestModelCount:
    def test_model_and_segment_counts(self, index, sample_keys):
        for k in sample_keys:
            index.insert(k, k)
        assert index.segment_count() > 0
        assert index.model_count() >= index.segment_count()
        assert 0.0 < index.load_factor() <= 1.0
