"""Tests for trace record/replay and the terminal chart renderer."""

import json

import pytest

from repro.bench import make_adapter, run_operations
from repro.bench.chart import bar_chart, grouped_bar_chart
from repro.core import DyTISConfig
from repro.datasets import generate
from repro.workloads import (
    OpKind,
    Operation,
    WORKLOADS,
    generate_operations,
    load_trace,
    save_trace,
)

CFG = DyTISConfig(key_bits=32, first_level_bits=2, bucket_capacity=8, l_start=1)


class TestTrace:
    def test_roundtrip(self, tmp_path):
        keys = generate("TX", 2000, seed=0)
        preload, ops = generate_operations(WORKLOADS["E"], keys, 500, seed=1)
        path = tmp_path / "trace.jsonl"
        save_trace(path, preload, ops)
        preload2, ops2 = load_trace(path)
        assert preload2 == preload
        assert ops2 == ops

    def test_scan_args_survive(self, tmp_path):
        ops = [Operation(OpKind.SCAN, 5, 77), Operation(OpKind.READ, 9)]
        path = tmp_path / "t.jsonl"
        save_trace(path, [1, 2], ops)
        _, ops2 = load_trace(path)
        assert ops2[0].arg == 77
        assert ops2[1].arg is None

    def test_replay_gives_same_final_state(self, tmp_path):
        keys = generate("RM", 2000, seed=2)
        preload, ops = generate_operations(WORKLOADS["A"], keys, 800, seed=3)
        path = tmp_path / "trace.jsonl"
        save_trace(path, preload, ops)

        def run(trace_preload, trace_ops):
            adapter = make_adapter("DyTIS", CFG)
            for k in trace_preload:
                adapter.insert(k & 0xFFFFFFFF, k)
            fixed = [
                Operation(op.kind, op.key & 0xFFFFFFFF, op.arg)
                for op in trace_ops
            ]
            run_operations(adapter, fixed, "replay")
            return sorted(adapter.index.items())

        assert run(preload, ops) == run(*load_trace(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"version": 99, "preload": [], "n_ops": 0}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_truncated_trace_detected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(path, [], [Operation(OpKind.READ, 1)] * 3)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)


class TestCharts:
    def test_bar_chart_proportions(self):
        out = bar_chart([("a", 10.0), ("b", 5.0)], title="T", width=20)
        lines = out.splitlines()
        assert lines[0] == "T"
        bar_a = lines[1].split("|")[1]
        bar_b = lines[2].split("|")[1]
        assert bar_a.count("█") == 20
        assert 9 <= bar_b.count("█") <= 10

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart([])

    def test_zero_values(self):
        out = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "a" in out and "b" in out

    def test_grouped_chart_shared_scale(self):
        out = grouped_bar_chart(
            {"g1": {"x": 10.0, "y": 2.0}, "g2": {"x": 5.0}},
            title="G",
        )
        assert "-- g1" in out and "-- g2" in out
        # y's bar is a fifth of x's within the same global scale.
        lines = out.splitlines()
        x1 = next(l for l in lines if l.strip().startswith("x") and "10.0" in l)
        assert x1.split("|")[1].count("█") == 40

    def test_grouped_chart_series_order(self):
        out = grouped_bar_chart(
            {"g": {"b": 1.0, "a": 2.0}}, series_order=["b", "a"]
        )
        lines = [l.strip() for l in out.splitlines() if "|" in l]
        assert lines[0].startswith("b")
