"""Vectorized batch operations: get_many / insert_many.

Batch calls sort their input and reuse per-segment routing state; these
tests pin down the contract that makes that safe: results positionally
aligned with the input, last-wins duplicate semantics, scalar fallback
when a group triggers structural changes, and sequential error
semantics on invalid keys.
"""

import random

import pytest

from repro.core import DyTIS, DyTISConfig


@pytest.fixture
def loaded(small_config, rng):
    keys = rng.sample(range(2**32), 3000)
    d = DyTIS(small_config)
    for k in keys:
        d.insert(k, k * 2)
    return d, keys


class TestGetMany:
    def test_matches_scalar_gets(self, loaded, rng):
        d, keys = loaded
        batch = rng.sample(keys, 500) + [
            rng.randrange(2**32) for _ in range(500)
        ]
        rng.shuffle(batch)
        assert d.get_many(batch) == [d.get(k) for k in batch]

    def test_preserves_input_order_and_duplicates(self, loaded):
        d, keys = loaded
        batch = [keys[0], keys[1], keys[0], keys[0], keys[2]]
        out = d.get_many(batch)
        assert out == [k * 2 for k in batch]

    def test_empty_batch(self, loaded):
        d, _ = loaded
        assert d.get_many([]) == []

    def test_stored_none_vs_missing(self, small_config):
        d = DyTIS(small_config)
        d.insert(1, None)
        assert d.get_many([1, 2]) == [None, None]
        assert 1 in d and 2 not in d

    def test_empty_index_and_empty_tables(self, small_config, rng):
        d = DyTIS(small_config)
        assert d.get_many([1, 2**31]) == [None, None]
        d.insert(5, "v")  # only one first-level table materialised
        batch = [5] + [rng.randrange(2**32) for _ in range(100)]
        assert d.get_many(batch) == [d.get(k) for k in batch]

    def test_rejects_invalid_keys(self, loaded):
        d, keys = loaded
        with pytest.raises(ValueError):
            d.get_many([keys[0], 2**32])
        with pytest.raises(ValueError):
            d.get_many([-1])


class TestInsertMany:
    def test_matches_scalar_inserts(self, small_config, rng):
        keys = rng.sample(range(2**32), 4000)
        batch_ix, scalar_ix = DyTIS(small_config), DyTIS(small_config)
        for lo in range(0, len(keys), 512):
            chunk = keys[lo : lo + 512]
            batch_ix.insert_many([(k, k) for k in chunk])
            for k in chunk:
                scalar_ix.insert(k, k)
        batch_ix.check_invariants()
        assert list(batch_ix.items()) == list(scalar_ix.items())

    def test_duplicates_in_batch_last_wins(self, small_config):
        d = DyTIS(small_config)
        d.insert_many([(7, "a"), (8, "x"), (7, "b"), (7, "c")])
        assert len(d) == 2
        assert d.get(7) == "c"

    def test_updates_existing_keys(self, loaded):
        d, keys = loaded
        n = len(d)
        d.insert_many([(k, "new") for k in keys[:100]])
        assert len(d) == n
        assert d.get_many(keys[:100]) == ["new"] * 100

    def test_structural_fallback_tiny_buckets(self, rng):
        """Full buckets force the scalar Algorithm-1 path mid-batch."""
        config = DyTISConfig(
            key_bits=32, first_level_bits=2, bucket_capacity=4, l_start=1
        )
        keys = rng.sample(range(2**32), 2000)
        d = DyTIS(config)
        d.insert_many([(k, k) for k in keys])
        d.check_invariants()
        assert len(d) == 2000
        assert d.get_many(keys) == [k for k in keys]
        assert d.stats.structural_ops() > 0

    def test_empty_batch(self, small_config):
        d = DyTIS(small_config)
        d.insert_many([])
        assert len(d) == 0

    def test_invalid_key_falls_back_to_sequential_semantics(
        self, small_config
    ):
        d = DyTIS(small_config)
        with pytest.raises(ValueError):
            d.insert_many([(1, "a"), (2**32, "too big"), (3, "c")])
        # Sequential semantics: pairs before the bad key are applied.
        assert d.get(1) == "a"
        assert d.get(3) is None

    def test_interleaves_with_scalar_ops(self, small_config, rng):
        d, ref = DyTIS(small_config), {}
        for _ in range(20):
            chunk = [
                (rng.randrange(2**32), rng.random()) for _ in range(200)
            ]
            d.insert_many(chunk)
            ref.update(chunk)
            k, v = rng.randrange(2**32), "scalar"
            d.insert(k, v)
            ref[k] = v
        d.check_invariants()
        assert dict(d.items()) == ref


def test_batch_roundtrip_on_paper_dataset():
    from repro.datasets import taxi_like

    keys = [int(k) for k in taxi_like(5000, seed=3)]
    d = DyTIS()
    d.insert_many([(k, i) for i, k in enumerate(keys)])
    expect = {k: i for i, k in enumerate(keys)}
    probe = random.Random(3).sample(keys, 1000)
    assert d.get_many(probe) == [expect[k] for k in probe]
