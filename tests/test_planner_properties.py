"""Property-based tests for the Algorithm-1 planners (repro.core.segment).

The planners carry DyTIS's correctness: a returned remapping plan must
actually fit the keys (plus the pending insert) within the cap, split
plans must partition cleanly, and rebuilds must preserve the exact
key/value multiset.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.remap import PiecewiseRemap
from repro.core.segment import (
    Segment,
    build_fitting,
    layout_fits,
    plan_remap,
    plan_split,
)

DOMAIN_BITS = 10
CAPACITY = 4

_keys = st.lists(
    st.integers(0, (1 << DOMAIN_BITS) - 1), min_size=1, max_size=80, unique=True
)


def _segment_holding(keys):
    """Build a segment that provably holds ``keys`` (generous layout)."""
    keys = sorted(keys)
    remap = PiecewiseRemap(DOMAIN_BITS, [max(1, len(keys))])
    return build_fitting(
        3, remap, CAPACITY, keys, keys, cap=1 << 16, max_piece_bits=DOMAIN_BITS
    )


@given(_keys, st.integers(0, (1 << DOMAIN_BITS) - 1), st.integers(1, 64))
@settings(max_examples=200, deadline=None)
def test_plan_remap_result_always_fits(keys, insert_key, cap):
    assume(insert_key not in set(keys))
    seg = _segment_holding(keys)
    plan = plan_remap(
        seg, insert_key, cap=cap, util_threshold=0.6, max_piece_bits=8
    )
    if plan is None:
        return  # failure is legal; Algorithm 1 escalates
    assert plan.n_buckets <= max(cap, seg.n_buckets)
    lk = seg.local_keys_array()
    assert layout_fits(plan, lk, CAPACITY, extra_key=insert_key)


@given(_keys)
@settings(max_examples=200, deadline=None)
def test_plan_split_partitions_all_keys(keys):
    seg = _segment_holding(keys)
    left, right = plan_split(seg, cap_child=1 << 12)
    assert left.domain_bits == right.domain_bits == seg.domain_bits - 1
    mid = 1 << (seg.domain_bits - 1)
    left_keys = [k for k in keys if k < mid]
    right_keys = [k for k in keys if k >= mid]
    built_left = build_fitting(
        4, left, CAPACITY, sorted(left_keys), sorted(left_keys),
        cap=1 << 16, max_piece_bits=8,
    )
    built_right = build_fitting(
        4, right, CAPACITY, sorted(right_keys), sorted(right_keys),
        cap=1 << 16, max_piece_bits=8,
    )
    assert built_left.total_keys == len(left_keys)
    assert built_right.total_keys == len(right_keys)


@given(_keys, st.integers(1, 6))
@settings(max_examples=200, deadline=None)
def test_build_fitting_preserves_multiset(keys, piece_bits):
    keys = sorted(keys)
    values = [k * 3 for k in keys]
    remap = PiecewiseRemap(DOMAIN_BITS, [1] * (1 << min(piece_bits, DOMAIN_BITS)))
    seg = build_fitting(
        2, remap, CAPACITY, keys, values, cap=1 << 16, max_piece_bits=8
    )
    assert [k for k, _ in seg.items()] == keys
    assert [v for _, v in seg.items()] == values
    seg.check_invariants()


@given(_keys)
@settings(max_examples=100, deadline=None)
def test_segment_rebuild_roundtrip(keys):
    """collect() → build() reproduces the segment exactly."""
    seg = _segment_holding(sorted(keys))
    ks, vs = seg.collect()
    rebuilt = Segment.build(seg.local_depth, seg.remap, CAPACITY, ks, vs)
    assert list(rebuilt.items()) == list(seg.items())
    rebuilt.check_invariants()
