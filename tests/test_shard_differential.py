"""Lockstep differential fuzzing for the multi-process ShardedIndex.

The same shadow-dict harness as ``test_differential.py``, pointed at a
process fleet: every operation runs against a ShardedIndex (2 and 4
shards, both routing modes) and a plain dict oracle, and any
divergence is a routing/merge/consistency bug.  The trace extends the
single-process one with the range operations whose scatter-gather
merges are the novel surface here -- ``scan_range``, ``count_range``
and ``delete_range`` spans wide enough to cross shard boundaries, plus
deterministic spans straddling *exact* boundaries so boundary handling
is exercised every run, not just when the RNG cooperates.
"""

import random

import pytest

from repro.core import DyTISConfig
from repro.shard import ShardedIndex

CFG = DyTISConfig(key_bits=32, first_level_bits=3, bucket_capacity=8, l_start=1)
#: Keys are drawn below 2^31 (as in test_differential.py), so the top
#: key bit is constant: MSB routing skips it to split on live bits.
KEY_SPACE = 2**31
MSB_SKIP_BITS = 1


def _trace(seed: int, n_ops: int):
    rng = random.Random(seed)
    hot = [rng.randrange(KEY_SPACE) for _ in range(64)]
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        key = rng.choice(hot) if rng.random() < 0.5 else rng.randrange(KEY_SPACE)
        if roll < 0.40:
            ops.append(("insert", key, rng.randrange(1000)))
        elif roll < 0.55:
            ops.append(("get", key, None))
        elif roll < 0.65:
            ops.append(("delete", key, None))
        elif roll < 0.75:
            ops.append(("scan", key, rng.randrange(1, 30)))
        else:
            # Range ops: spans up to half the key space, so most cross
            # at least one shard boundary at 2 or 4 shards.
            low = rng.randrange(KEY_SPACE)
            span = rng.randrange(1, KEY_SPACE // 2)
            high = min(low + span, KEY_SPACE)
            if roll < 0.85:
                ops.append(("scan_range", low, high))
            elif roll < 0.95:
                ops.append(("count_range", low, high))
            else:
                ops.append(("delete_range", low, high))
    return ops


def _boundary_ops(n_shards: int):
    """Deterministic range ops straddling every exact shard boundary
    of the MSB split (also meaningful under hash routing: they are
    simply wide ranges)."""
    width = KEY_SPACE // n_shards
    ops = []
    for b in range(1, n_shards):
        edge = b * width
        ops.append(("scan_range", edge - 1000, edge + 1000))
        ops.append(("count_range", edge - 5000, edge + 5000))
        ops.append(("delete_range", edge - 300, edge + 300))
        ops.append(("scan_range", edge - 300, edge + 300))
    return ops


def _run_trace(idx: ShardedIndex, oracle: dict, ops) -> None:
    for op, a, b in ops:
        if op == "insert":
            idx.insert(a, b)
            oracle[a] = b
        elif op == "get":
            assert idx.get(a) == oracle.get(a), a
        elif op == "delete":
            assert idx.delete(a) == (a in oracle), a
            oracle.pop(a, None)
        elif op == "scan":
            got = idx.scan(a, b)
            ref_keys = sorted(k for k in oracle if k >= a)[:b]
            assert [k for k, _ in got] == ref_keys, (a, b)
            assert [v for _, v in got] == [oracle[k] for k in ref_keys]
        elif op == "scan_range":
            got = idx.scan_range(a, b)
            ref_keys = sorted(k for k in oracle if a <= k < b)
            assert [k for k, _ in got] == ref_keys, (a, b)
            assert [v for _, v in got] == [oracle[k] for k in ref_keys]
        elif op == "count_range":
            ref = sum(1 for k in oracle if a <= k < b)
            assert idx.count_range(a, b) == ref, (a, b)
        elif op == "delete_range":
            ref = sum(1 for k in oracle if a <= k < b)
            assert idx.delete_range(a, b) == ref, (a, b)
            for k in [k for k in oracle if a <= k < b]:
                del oracle[k]
    assert len(idx) == len(oracle)


@pytest.mark.parametrize("n_shards", [2, 4])
@pytest.mark.parametrize(
    "mode,skip_bits", [("msb", MSB_SKIP_BITS), ("hash", 0)]
)
def test_sharded_matches_oracle(n_shards, mode, skip_bits):
    with ShardedIndex(
        n_shards, config=CFG, mode=mode, skip_bits=skip_bits
    ) as idx:
        base = sorted(random.Random(99).sample(range(KEY_SPACE), 512))
        idx.bulk_load(base, base)
        oracle = {k: k for k in base}
        _run_trace(idx, oracle, _trace(seed=n_shards, n_ops=600))
        _run_trace(idx, oracle, _boundary_ops(n_shards))


@pytest.mark.parametrize("n_shards", [2, 4])
def test_sharded_agrees_with_single_process(n_shards):
    """ShardedIndex and a plain DyTIS answer one trace identically."""
    from repro.core import DyTIS

    solo = DyTIS(CFG)
    with ShardedIndex(n_shards, config=CFG, mode="hash") as idx:
        for op, a, b in _trace(seed=17, n_ops=500):
            if op == "insert":
                idx.insert(a, b)
                solo.insert(a, b)
            elif op == "get":
                assert idx.get(a) == solo.get(a), a
            elif op == "delete":
                assert idx.delete(a) == solo.delete(a), a
            elif op == "scan":
                assert idx.scan(a, b) == solo.scan(a, b), (a, b)
            elif op == "scan_range":
                assert idx.scan_range(a, b) == solo.scan_range(a, b), (a, b)
            elif op == "count_range":
                assert idx.count_range(a, b) == solo.count_range(a, b)
            elif op == "delete_range":
                assert idx.delete_range(a, b) == solo.delete_range(a, b)
        assert len(idx) == len(solo)
        assert list(idx.items()) == list(solo.items())
