"""Tests for the dynamic-dataset metrics (repro.metrics)."""

import numpy as np
import pytest

from repro.metrics import (
    calibrate_gamma,
    characterize,
    key_distribution_divergence,
    kl_divergence,
    variance_of_skewness,
)


class TestVarianceOfSkewness:
    def test_uniform_is_one_model(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**60, size=30000)
        assert variance_of_skewness(keys, window=10000) == pytest.approx(1.0)

    def test_clustered_higher_than_uniform(self):
        rng = np.random.default_rng(1)
        uniform = rng.integers(0, 2**60, size=20000)
        centers = rng.integers(0, 2**60, size=20)
        clustered = np.concatenate(
            [rng.integers(c, c + 10**6, size=1000) for c in centers]
        )
        rng.shuffle(clustered)
        assert variance_of_skewness(clustered, window=10000) > variance_of_skewness(
            uniform, window=10000
        )

    def test_empty(self):
        assert variance_of_skewness([], window=100) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            variance_of_skewness([1, 2, 3], window=1)

    def test_partial_tail_window_dropped(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**60, size=10500)
        # The 500-key tail (< half a window) must not skew the average.
        full = variance_of_skewness(keys[:10000], window=10000)
        with_tail = variance_of_skewness(keys, window=10000)
        assert with_tail == pytest.approx(full)

    def test_calibrate_gamma_keeps_uniform_at_one(self):
        gamma = calibrate_gamma(window=5000, trials=2)
        rng = np.random.default_rng(9)
        keys = np.sort(rng.integers(0, 2**63, size=5000))
        from repro.plr import fit_plr

        assert len(fit_plr(keys.astype(float).tolist(), gamma)) == 1


class TestKLDivergence:
    def test_identical_is_zero(self):
        h = np.array([10, 20, 30, 40])
        assert kl_divergence(h, h) == pytest.approx(0.0, abs=1e-12)

    def test_nonnegative(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            p = rng.integers(0, 100, size=50)
            q = rng.integers(0, 100, size=50)
            assert kl_divergence(p, q) >= -1e-12

    def test_asymmetric(self):
        p = np.array([100, 0, 0, 0])
        q = np.array([25, 25, 25, 25])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_disjoint_large(self):
        p = np.array([100, 100, 0, 0])
        q = np.array([0, 0, 100, 100])
        assert kl_divergence(p, q) > 1.0


class TestKDD:
    def test_stationary_near_zero(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 2**60, size=40000)
        assert key_distribution_divergence(keys, window=10000) < 0.1

    def test_drifting_much_higher(self):
        # Monotone keys: consecutive windows occupy disjoint ranges.
        keys = np.arange(40000, dtype=np.uint64) * 12345
        drifting = key_distribution_divergence(keys, window=10000)
        rng = np.random.default_rng(5)
        stationary = key_distribution_divergence(
            rng.integers(0, 2**60, size=40000), window=10000
        )
        assert drifting > 10 * stationary

    def test_shuffling_lowers_kdd(self):
        keys = np.arange(40000, dtype=np.uint64) * 9973
        rng = np.random.default_rng(6)
        shuffled = keys.copy()
        rng.shuffle(shuffled)
        assert key_distribution_divergence(
            shuffled, window=10000
        ) < key_distribution_divergence(keys, window=10000)

    def test_fewer_than_two_windows(self):
        assert key_distribution_divergence(np.arange(100), window=1000) == 0.0

    def test_constant_keys(self):
        keys = np.full(20000, 42, dtype=np.uint64)
        assert key_distribution_divergence(keys, window=10000) == 0.0


class TestCharacterize:
    def test_returns_both_metrics(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 2**60, size=20000)
        c = characterize("x", keys, window=10000)
        assert c.name == "x"
        assert c.n_keys == 20000
        assert c.skewness == pytest.approx(1.0)
        assert c.kdd < 0.1

    def test_classify_grades(self):
        c = characterize("u", np.random.default_rng(8).integers(0, 2**60, 20000),
                         window=10000)
        assert c.classify() == "LL"
