"""IndexProtocol conformance + cross-implementation differential tests.

Every ordered index must satisfy ``repro.api.IndexProtocol``
structurally, and the range operations (``scan_range``,
``count_range``, ``delete_range``) must agree across implementations:
DyTIS is the reference, the B+-tree and the RangeOpsMixin-backed
learned indexes are checked against it on the same random workload.
"""

import random

import pytest

from repro.api import IndexProtocol, RangeOpsMixin, is_index
from repro.btree.bptree import BPlusTree
from repro.core.concurrent import ConcurrentDyTIS
from repro.core.dytis import DyTIS
from repro.learned.alex import AlexIndex
from repro.learned.lipp import LippIndex
from repro.learned.pgm import PGMIndex
from repro.learned.rmi import RMIndex
from repro.learned.xindex import XIndex

ALL_INDEX_CLASSES = [
    DyTIS,
    ConcurrentDyTIS,
    BPlusTree,
    AlexIndex,
    XIndex,
    LippIndex,
    PGMIndex,
    RMIndex,
]

# Indexes supporting the full mutable workload (RMIndex is read-only
# after bulk_load by design, so it is conformant but not differential).
MUTABLE_CLASSES = [
    DyTIS,
    ConcurrentDyTIS,
    BPlusTree,
    AlexIndex,
    XIndex,
    LippIndex,
    PGMIndex,
]


def _make(cls):
    idx = cls()
    if cls is XIndex:
        # XIndex must be bulk loaded before serving; an empty load
        # bootstraps one group so inserts can flow into its delta.
        idx.bulk_load([], [])
    return idx


@pytest.mark.parametrize("cls", ALL_INDEX_CLASSES)
def test_protocol_conformance(cls):
    obj = cls()
    assert isinstance(obj, IndexProtocol)
    assert is_index(obj)


def test_non_index_rejected():
    assert not is_index(object())
    assert not is_index({})


def _workload(seed=11, n=4000, span=200_000):
    rng = random.Random(seed)
    keys = rng.sample(range(1, span), n)
    return keys


@pytest.mark.parametrize("cls", MUTABLE_CLASSES)
def test_scan_range_matches_dytis(cls):
    keys = _workload()
    ref = DyTIS()
    idx = _make(cls)
    for k in keys:
        ref.insert(k, k * 3)
        idx.insert(k, k * 3)
    for lo, hi in [
        (0, 1),
        (7, 7),
        (10, 5),
        (100, 50_000),
        (1, 300_000),
        (150_000, 160_000),
        (199_999, 200_001),
    ]:
        assert idx.scan_range(lo, hi) == ref.scan_range(lo, hi)
        assert idx.count_range(lo, hi) == ref.count_range(lo, hi)


def test_bptree_delete_range_matches_dytis():
    keys = _workload(seed=23)
    ref = DyTIS()
    bt = BPlusTree()
    for k in keys:
        ref.insert(k, k)
        bt.insert(k, k)
    n_ref = ref.delete_range(40_000, 90_000)
    n_bt = bt.delete_range(40_000, 90_000)
    assert n_bt == n_ref
    assert len(bt) == len(ref)
    assert list(bt.items()) == list(ref.items())
    # Deleting an empty range is a no-op.
    assert bt.delete_range(40_000, 40_000) == 0
    assert bt.delete_range(90_000, 40_000) == 0


def test_bptree_count_range_boundary_leaves():
    """count_range must bisect both boundary leaves, not just the first."""
    bt = BPlusTree(fanout=4)  # tiny fanout: ranges span many leaves
    for k in range(0, 1000, 2):
        bt.insert(k, k)
    assert bt.count_range(0, 1000) == 500
    assert bt.count_range(1, 999) == 499
    assert bt.count_range(10, 11) == 1
    assert bt.count_range(11, 12) == 0
    assert bt.count_range(998, 10_000) == 1
    assert bt.scan_range(100, 110) == [(k, k) for k in range(100, 110, 2)]


def test_range_ops_mixin_pages_past_batch_size():
    """The mixin must page correctly when a range exceeds one batch."""

    class TinyBatch(RangeOpsMixin):
        _RANGE_BATCH = 16

        def __init__(self, pairs):
            self._pairs = sorted(pairs)

        def scan(self, start_key, count):
            out = [p for p in self._pairs if p[0] >= start_key]
            return out[:count]

    pairs = [(k, -k) for k in range(0, 500, 3)]
    t = TinyBatch(pairs)
    assert t.scan_range(0, 500) == pairs
    assert t.count_range(0, 500) == len(pairs)
    assert t.scan_range(10, 100) == [p for p in pairs if 10 <= p[0] < 100]
    assert t.count_range(499, 499) == 0


def test_insert_is_update_across_indexes():
    """Protocol semantics: insert on an existing key replaces the value."""
    for cls in MUTABLE_CLASSES:
        idx = _make(cls)
        idx.insert(5, "a")
        idx.insert(5, "b")
        assert idx.get(5) == "b"
        assert len(idx) == 1
        assert 5 in idx
        assert idx.get(6) is None
