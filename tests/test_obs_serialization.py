"""Round-trip + merge-commutativity properties of the obs wire frames.

The sharded front-end ships histograms and probe counters between
processes as self-describing byte frames (no pickle).  The contract
these tests pin down: a round trip is lossless (every flushed field,
every bucket), and merging is commutative across round trips --
``merge(a, b) == merge(b, a)`` whether the operands traveled through
bytes or not, which is what makes a metrics scrape independent of the
order workers reply in.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import LatencyHistogram, ProbeCounters

samples = st.lists(
    st.integers(min_value=0, max_value=2**44), min_size=0, max_size=200
)


def _hist(values):
    h = LatencyHistogram()
    h.record_many(values)
    return h


def _state(h: LatencyHistogram):
    return (h.counts[:], h.count, h.sum_ns, h.min_ns, h.max_ns)


@given(samples)
@settings(max_examples=60, deadline=None)
def test_histogram_round_trip_is_lossless(values):
    h = _hist(values)
    back = LatencyHistogram.from_bytes(h.to_bytes())
    assert _state(back) == _state(h)
    # Round trip again: serialization is stable.
    assert back.to_bytes() == h.to_bytes()


@given(samples, samples)
@settings(max_examples=60, deadline=None)
def test_histogram_merge_commutes_after_round_trip(va, vb):
    ab = LatencyHistogram.from_bytes(_hist(va).to_bytes()).merge_from(
        LatencyHistogram.from_bytes(_hist(vb).to_bytes())
    )
    ba = LatencyHistogram.from_bytes(_hist(vb).to_bytes()).merge_from(
        LatencyHistogram.from_bytes(_hist(va).to_bytes())
    )
    assert _state(ab) == _state(ba)
    # And matches the merge that never touched bytes.
    direct = _hist(va).merge_from(_hist(vb))
    assert _state(ab) == _state(direct)


def test_histogram_overflow_boundary_exponent():
    """Values with exponent exactly _MAX_EXP land in the overflow
    bucket (regression: they used to index past the bucket array, in
    both the scalar and vectorized folds)."""
    for n in (1, 100):  # scalar fold, then the vectorized one
        h = LatencyHistogram()
        h.record_many([2**40] * n + [2**40 + 5] * n + [2**41] * n)
        assert h.count == 3 * n
        assert h.max_ns == 2**41
        back = LatencyHistogram.from_bytes(h.to_bytes())
        assert _state(back) == _state(h)


def test_histogram_to_bytes_flushes_pending():
    h = LatencyHistogram()
    h.record(5)  # sits in the pending buffer
    back = LatencyHistogram.from_bytes(h.to_bytes())
    assert back.count == 1
    assert back.min_ns == 5


def test_histogram_from_bytes_rejects_garbage():
    h = _hist([1, 2, 3])
    good = h.to_bytes()
    with pytest.raises(ValueError):
        LatencyHistogram.from_bytes(b"")
    with pytest.raises(ValueError):
        LatencyHistogram.from_bytes(b"NOPE" + good[4:])
    with pytest.raises(ValueError):
        LatencyHistogram.from_bytes(good + b"\x00")
    with pytest.raises(ValueError):
        LatencyHistogram.from_bytes(good[:-1])


#: Per-span attribution entries: span-start key -> [gets, misses,
#: depth_sum].  Spans are uint64 keys; the three counts stay small so
#: merged sums remain within u64 after repeated merging.
segment_attr = st.dictionaries(
    st.integers(0, 2**64 - 1),
    st.tuples(
        st.integers(0, 2**30), st.integers(0, 2**30), st.integers(0, 2**40)
    ).map(list),
    max_size=12,
)

counters = st.builds(
    ProbeCounters,
    gets=st.integers(0, 2**40),
    buckets_probed=st.integers(0, 2**40),
    plr_hits=st.integers(0, 2**40),
    plr_misses=st.integers(0, 2**40),
    scans=st.integers(0, 2**40),
    scan_segment_hops=st.integers(0, 2**40),
    probe_depth_sum=st.integers(0, 2**44),
    segments=segment_attr,
)


@given(counters)
@settings(max_examples=60, deadline=None)
def test_probe_counters_round_trip(pc):
    back = ProbeCounters.from_bytes(pc.to_bytes())
    assert back == pc
    # Canonical: equal counters produce identical frames regardless of
    # the dict's insertion order.
    assert back.to_bytes() == pc.to_bytes()


@given(counters, counters)
@settings(max_examples=60, deadline=None)
def test_probe_counters_merge_commutes_after_round_trip(a, b):
    ab = ProbeCounters.from_bytes(a.to_bytes()).merge_from(
        ProbeCounters.from_bytes(b.to_bytes())
    )
    ba = ProbeCounters.from_bytes(b.to_bytes()).merge_from(
        ProbeCounters.from_bytes(a.to_bytes())
    )
    assert ab == ba
    # Per-span attribution merges element-wise, same as the scalars.
    direct = ProbeCounters()
    direct.merge_from(a).merge_from(b)
    assert ab.segments == direct.segments


@given(counters, counters)
@settings(max_examples=40, deadline=None)
def test_probe_counters_merge_does_not_alias(a, b):
    """Merging must deep-copy span entries, not share the lists."""
    merged = ProbeCounters().merge_from(a)
    merged.merge_from(b)
    for span, ent in merged.segments.items():
        assert ent is not a.segments.get(span)
        assert ent is not b.segments.get(span)


def test_probe_counters_note_get_attributes_spans():
    pc = ProbeCounters()
    pc.note_get(16, 3, True)
    pc.note_get(16, 5, False)
    pc.note_get(32, 1, True)
    assert pc.gets == 3 and pc.plr_misses == 1
    assert pc.probe_depth_sum == 9
    assert pc.segments == {16: [2, 1, 8], 32: [1, 0, 1]}
    deltas = pc.segment_deltas({16: [1, 0, 3]})
    assert deltas == {16: [1, 1, 5], 32: [1, 0, 1]}


def test_probe_counters_rejects_garbage():
    good = ProbeCounters(gets=1, segments={7: [1, 0, 3]}).to_bytes()
    with pytest.raises(ValueError):
        ProbeCounters.from_bytes(b"XXXX" + good[4:])
    with pytest.raises(ValueError):
        ProbeCounters.from_bytes(good[:-1])
    with pytest.raises(ValueError):
        ProbeCounters.from_bytes(good + b"\x00" * 32)
