"""Online maintenance: policy scans, atomic re-bulkload, shard wiring.

The controller's contract is *logical transparency*: a maintenance
step may restructure anything, but the key/value mapping, iteration
order, and every index invariant must be exactly what they were.  The
fuzz tests run it in lockstep with a shadow dict under mixed ops on
both storage engines; the shard test drives it across worker
processes and checks the ``maint_*`` counters come back in the
metrics scrape.
"""

import random

import numpy as np
import pytest

from repro.core import (
    DyTIS,
    DyTISConfig,
    MaintenanceController,
    check_invariants,
)
from repro.core.maintenance import MaintMetrics
from repro.datasets import shifting_hotspot
from repro.obs import Observability


def _drifted_index(config, n=6000):
    """An index grown under a shifting hotspot, plus hot read keys."""
    obs = Observability()
    d = DyTIS(config, obs=obs)
    keys = shifting_hotspot(n, seed=7, n_phases=6)
    scale = np.uint64((1 << config.key_bits) - 1)
    keys = np.unique((keys >> np.uint64(64 - config.key_bits)) & scale)
    for k in keys.tolist():
        d.insert(k, k)
    return d, obs, keys


# -- policy scan -------------------------------------------------------


def test_scan_reports_cover_every_segment(small_config):
    d, obs, keys = _drifted_index(small_config, n=3000)
    ctrl = MaintenanceController(d)
    reports = ctrl.scan()
    n_segments = sum(
        sum(1 for _ in t.unique_segments())
        for t in d._tables
        if t is not None
    )
    assert len(reports) == n_segments
    assert sum(r.total_keys for r in reports) == len(d)
    # Span-start keys are unique and ascending within the walk.
    spans = [r.span for r in reports]
    assert spans == sorted(spans) and len(set(spans)) == len(spans)


def test_traffic_gated_reasons_need_traffic(small_config):
    d, obs, keys = _drifted_index(small_config, n=3000)
    ctrl = MaintenanceController(d)
    for r in ctrl.scan():
        # No gets have been recorded, so only the traffic-independent
        # "sparse" verdict may appear.
        assert set(r.reasons) <= {"sparse"}


def test_sparse_reason_fires_without_traffic(small_config):
    d = DyTIS(small_config)
    # Dense load, then delete most of it: fragmentation with zero gets.
    ks = list(range(0, 20000, 3))
    d.bulk_load(ks, ks)
    for k in ks:
        if k % 30:
            d.delete(k)
    ctrl = MaintenanceController(d)
    reports = ctrl.scan()
    assert any("sparse" in r.reasons for r in reports)


def test_step_preserves_contents_and_invariants(small_config):
    d, obs, keys = _drifted_index(small_config)
    hot = keys[: len(keys) // 3].tolist()
    for k in hot:
        assert d.get(k) == k
    ctrl = MaintenanceController(d)
    events = ctrl.step()
    check_invariants(d)
    assert len(d) == len(keys)
    for k in keys.tolist():
        assert d.get(k) == k
    # Iteration order is still globally sorted.
    it_keys = [k for k, _ in d.items()]
    assert it_keys == sorted(it_keys)
    for e in events:
        assert e.scope in ("segment", "table")
        assert e.keys_moved >= 0


def test_table_rebuild_reduces_segments_under_fragmentation(small_config):
    d = DyTIS(small_config)
    ks = list(range(0, 60000, 2))
    for k in ks:
        d.insert(k, k)
    for k in ks:
        if k % 20:
            d.delete(k)
    before = sum(
        sum(1 for _ in t.unique_segments())
        for t in d._tables
        if t is not None
    )
    ctrl = MaintenanceController(d)
    events = ctrl.step()
    assert events, "fragmented index should trigger maintenance"
    after = sum(
        sum(1 for _ in t.unique_segments())
        for t in d._tables
        if t is not None
    )
    assert after < before
    check_invariants(d)
    survivors = [k for k in ks if k % 20 == 0]
    assert len(d) == len(survivors)
    for k in survivors:
        assert d.get(k) == k


def test_budget_bounds_rebuilds(small_config):
    d, obs, keys = _drifted_index(small_config)
    for k in keys[:500].tolist():
        d.get(k)
    ctrl = MaintenanceController(d)
    events = ctrl.step(max_rebuilds=1)
    assert len(events) <= 1
    assert ctrl.metrics.steps_total == 1


def test_metrics_accumulate_and_merge():
    a = MaintMetrics(steps_total=1, keys_moved_total=10, last_degraded=2)
    b = MaintMetrics(steps_total=2, keys_moved_total=5, last_degraded=1)
    a.merge_from(b)
    assert a.steps_total == 3
    assert a.keys_moved_total == 15
    d = a.to_dict()
    assert d["steps_total"] == 3 and "table_rebuilds_total" in d


def test_controller_without_obs_repairs_structure_only(small_config):
    d = DyTIS(small_config)  # no observability at all
    ks = list(range(0, 40000, 2))
    d.bulk_load(ks, ks)
    for k in ks:
        if k % 16:
            d.delete(k)
    ctrl = MaintenanceController(d)
    events = ctrl.step()
    assert events  # sparse rule is traffic-independent
    check_invariants(d)
    survivors = [k for k in ks if k % 16 == 0]
    for k in survivors:
        assert d.get(k) == k


def test_maintenance_event_on_bus(small_config):
    d, obs, keys = _drifted_index(small_config)
    for k in keys[:3000].tolist():
        d.get(k)
    seen = []
    obs.events.subscribe(seen.append, kinds=("maintenance",))
    ctrl = MaintenanceController(d)
    events = ctrl.step()
    assert [e.seq for e in seen] == [e.seq for e in events]
    if events:
        assert obs.events.counts["maintenance"] == len(events)


# -- mixed-op fuzz against a shadow dict -------------------------------


@pytest.mark.parametrize("seed", [1, 2])
def test_maintenance_lockstep_with_shadow_dict(small_config, seed):
    """Mixed insert/get/delete/scan fuzz with periodic maintenance.

    The oracle never learns maintenance exists: every observable
    answer must match a plain dict throughout.
    """
    rng = random.Random(seed)
    cfg = small_config
    obs = Observability()
    d = DyTIS(cfg, obs=obs)
    ctrl = MaintenanceController(d)
    shadow = {}
    key_space = 1 << cfg.key_bits
    # Narrow moving window so structure actually drifts.
    window = key_space // 64
    base = 0
    for step in range(4000):
        if step % 500 == 499:
            events = ctrl.step()
            check_invariants(d)
            for e in events:
                assert e.keys_moved >= 0
        if step % 400 == 0:
            base = rng.randrange(key_space - window)
        op = rng.random()
        k = base + rng.randrange(window)
        if op < 0.55:
            v = rng.randrange(1 << 30)
            d.insert(k, v)
            shadow[k] = v
        elif op < 0.8:
            assert d.get(k) == shadow.get(k)
        elif op < 0.95:
            assert d.delete(k) == (shadow.pop(k, None) is not None)
        else:
            lo = base + rng.randrange(window)
            hi = min(lo + rng.randrange(window // 4 + 1), key_space - 1)
            got = d.scan_range(lo, hi)
            want = sorted(
                (kk, vv) for kk, vv in shadow.items() if lo <= kk <= hi
            )
            assert got == want
    assert len(d) == len(shadow)
    assert sorted(shadow.items()) == list(d.items())
    check_invariants(d)


# -- sharded fleet -----------------------------------------------------


def test_sharded_maintenance_and_metrics():
    from repro.obs.exposition import parse_prometheus
    from repro.shard import ShardedIndex

    cfg = DyTISConfig(
        key_bits=32, first_level_bits=4, bucket_capacity=8, l_start=2
    )
    with ShardedIndex(n_shards=2, config=cfg) as idx:
        ks = list(range(0, 2**31, 2**18))
        idx.bulk_load(ks, ks)
        for k in ks:
            if k % (2**20):
                idx.delete(k)
        for k in ks[:64]:
            idx.get(k)
        summary = idx.maintenance()
        assert summary["rebuilds"] >= 0
        assert set(summary) >= {
            "rebuilds",
            "segment_rebuilds",
            "table_rebuilds",
            "keys_moved",
            "degraded",
        }
        # Counters surface in the scrape, per shard and well-formed.
        page = idx.metrics_to_prometheus()
        samples = parse_prometheus(page)
        steps = [
            v
            for (name, labels), v in samples.items()
            if name == "dytis_shard_maint_steps_total"
        ]
        assert steps and sum(steps) == 2.0  # one step ran per shard
        # Contents survived across both shards.
        survivors = [k for k in ks if k % (2**20) == 0]
        assert len(idx) == len(survivors)
        for k in survivors:
            assert idx.get(k) == k
