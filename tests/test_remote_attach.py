"""The tentpole payoff: write -> kill -> wipe -> attach -> verify.

Three hostility tiers, per the acceptance criteria:

- **Clean storage**: ship a workload, destroy the primary's local
  directory entirely, attach a second store from remote, and verify
  against a shadow dict.
- **FlakyStorage at >= 10% injected fault rate**: every remote call can
  fail (and torn puts leave partial objects), yet retry/backoff plus
  publish-manifest-last must converge to the same attach result.
- **SimFS crash-point sweep**: local store and remote share one SimFS,
  so every upload syscall (temp write + rename of every object and
  manifest) is a numbered crash point.  At each one: crash, reboot,
  wipe the local directory, attach -- the recovered state must be a
  consistent prefix of the acknowledged history, never garbage, never
  a gap.

Plus the retention-pin satellite: local WAL truncation must not drop
segments the uploader has not shipped (remote ack gates local GC).
"""

import pytest

from repro.remote import (
    FlakyStorage,
    LocalFsStorage,
    MemStorage,
    RetryPolicy,
)
from repro.wal import DurableKVStore, FaultSpec, SimFS, SimulatedCrash
from repro.wal.faultfs import segment_files

SEGMENT_SIZE = 384

#: One mixed workload; every entry is an acknowledged operation.
OPS = (
    [("insert", "alpha", i, i * 10) for i in range(6)]
    + [
        ("insert_many", "beta", [(j, j + 100) for j in range(4)]),
        ("delete", "alpha", 2),
        ("checkpoint",),
    ]
    + [("insert", "alpha", i, i * 10) for i in range(6, 10)]
    + [
        ("delete_range", "alpha", 3, 8),
        ("insert", "beta", 50, 5),
        ("checkpoint",),
        ("insert", "alpha", 11, 110),
        ("insert", "beta", 51, 6),
    ]
)


def _policy():
    return RetryPolicy(max_attempts=6, base_delay=0.001, sleep=lambda d: None)


def _apply(store, shadow, op):
    kind = op[0]
    if kind == "checkpoint":
        store.checkpoint()
        return
    ns = store.namespace(op[1])
    if kind == "insert":
        ns.insert(op[2], op[3])
        shadow[(op[1], op[2])] = op[3]
    elif kind == "insert_many":
        ns.insert_many(op[2])
        for key, value in op[2]:
            shadow[(op[1], key)] = value
    elif kind == "delete":
        ns.delete(op[2])
        shadow.pop((op[1], op[2]), None)
    elif kind == "delete_range":
        ns.delete_range(op[2], op[3])
        for key in [k for n, k in list(shadow) if n == op[1]
                    and op[2] <= k < op[3]]:
            del shadow[(op[1], key)]


def _read_state(store):
    out = {}
    for name in store.namespaces():
        for key, value in store.namespace(name).items():
            out[(name, key)] = value
    return out


def test_write_kill_wipe_attach_clean():
    remote = MemStorage()
    fs = SimFS()
    shadow = {}
    store = DurableKVStore(
        "db", fs=fs, remote=remote, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    for op in OPS:
        _apply(store, shadow, op)
    # Seal + ship the tail so remote covers the full history.
    store.wal.rotate()
    assert store.ship()
    # Kill the primary and wipe its disk: a brand-new SimFS is a
    # machine with nothing local.  The replica attaches from remote.
    replica = DurableKVStore(
        "db", fs=SimFS(), remote=remote, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    assert _read_state(replica) == shadow
    assert replica.remote_metrics.attaches_total == 1
    assert replica.remote_metrics.attach_objects_total > 0
    # The replica is a fully writable store, not a read-only copy.
    replica.namespace("alpha").insert(999, 1)
    assert replica.namespace("alpha").get(999) == 1
    store.close()
    replica.close()


def test_attach_without_final_ship_recovers_checkpoint_prefix():
    """Killing before the tail ships loses only the unshipped suffix."""
    remote = MemStorage()
    fs = SimFS()
    shadow = {}
    states = [dict(shadow)]
    store = DurableKVStore(
        "db", fs=fs, remote=remote, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    for op in OPS:
        _apply(store, shadow, op)
        states.append(dict(shadow))
    # No rotate, no ship: the active segment tail stays local-only.
    replica = DurableKVStore(
        "db", fs=SimFS(), remote=remote, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    got = _read_state(replica)
    assert got in states  # a consistent prefix...
    last_ckpt = max(i for i, op in enumerate(OPS) if op[0] == "checkpoint")
    assert got.items() >= states[last_ckpt + 1].items() or got in states[last_ckpt + 1:]
    store.close()
    replica.close()


def test_torn_attach_reattaches_instead_of_recovering_partial_state():
    """A checkpoint-without-tail directory + marker must re-attach.

    This is the crash-atomicity contract: if an attach dies between
    restoring the checkpoint and restoring the WAL segments, ordinary
    recovery on the leftovers would come up from a truncated history
    (and restart the WAL below remotely-acknowledged LSNs).  The
    marker forces a wipe-and-reattach instead.
    """
    from repro.remote.uploader import ATTACH_MARKER, restore
    from repro.wal.faultfs import join

    remote = MemStorage()
    shadow = {}
    store = DurableKVStore(
        "db", fs=SimFS(), remote=remote, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    for op in OPS:
        _apply(store, shadow, op)
    store.wal.rotate()
    assert store.ship()
    store.close()
    # Hand-build the torn attach: checkpoint restored, WAL tail not,
    # marker still present (exactly what a mid-attach crash leaves).
    fs2 = SimFS()
    restore(remote, "db", fs=fs2, policy=_policy())
    for name in segment_files(fs2, "db"):
        fs2.remove(join("db", name))
    fs2.write_atomic(join("db", ATTACH_MARKER), b"manifest-torn")
    replica = DurableKVStore(
        "db", fs=fs2, remote=remote, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    assert _read_state(replica) == shadow, (
        "torn attach was recovered as if it were ordinary local state"
    )
    replica.close()


def test_reopen_during_remote_outage_serves_local_state():
    """A node restart while the remote is down must still open.

    All the data is local; an unreachable remote may only grow the
    ship backlog (everything stays pinned), never block recovery.
    """
    flaky = FlakyStorage(MemStorage(), sleep=lambda d: None)
    fs = SimFS()
    shadow = {}
    store = DurableKVStore(
        "db", fs=fs, remote=flaky, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    for op in OPS:
        _apply(store, shadow, op)
    store.wal.rotate()
    assert store.ship()
    store.close()
    flaky.error_rate = 1.0  # total outage across the restart
    reopened = DurableKVStore(
        "db", fs=fs, remote=flaky, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    assert _read_state(reopened) == shadow
    # Remote state unknown -> conservative: every segment stays pinned.
    assert reopened.uploader.safe_truncate_lsn() == 0
    ns = reopened.namespace("alpha")
    for i in range(100, 140):
        ns.insert(i, i)
        shadow[("alpha", i)] = i
    reopened.wal.rotate()
    assert not reopened.ship()  # still dark: backlog, not an error
    flaky.heal()
    # The first successful ship lazily rediscovers the remote
    # generation and drains the backlog on top of it.
    assert reopened.ship()
    assert reopened.uploader.generation >= 2
    replica = DurableKVStore(
        "db", fs=SimFS(), remote=flaky, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    assert _read_state(replica) == shadow
    reopened.close()
    replica.close()


def test_fallback_manifest_stays_restorable_after_checkpoint_gc():
    """GC must not delete objects a retained fallback still references.

    ``_MANIFEST_KEEP`` keeps current + fallback manifests so a
    corrupted newest manifest degrades to the previous generation;
    that only works if the fallback's objects outlive it.
    """
    remote = MemStorage()
    shadow = {}
    states = [dict(shadow)]
    store = DurableKVStore(
        "db", fs=SimFS(), remote=remote, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    for op in OPS:
        _apply(store, shadow, op)
        states.append(dict(shadow))
    store.checkpoint()  # a full GC pass over what the last ckpt dropped
    store.close()
    # Bit-rot the newest manifest: restore must fall back to the
    # retained previous generation, whose objects must all still exist.
    newest = max(remote.list("manifest-"))
    remote._objects[newest] = b"\x00" + remote._objects[newest][1:]
    replica = DurableKVStore(
        "db", fs=SimFS(), remote=remote, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    got = _read_state(replica)
    assert got in states, "fallback restored an inconsistent state"
    last_ckpt = max(i for i, op in enumerate(OPS) if op[0] == "checkpoint")
    assert got.items() >= states[last_ckpt + 1].items(), (
        "fallback generation lost history it claims to cover"
    )
    replica.close()


def test_virgin_remote_starts_empty_store():
    store = DurableKVStore(
        "db", fs=SimFS(), remote=MemStorage(), remote_policy=_policy()
    )
    assert store.namespaces() == []
    store.namespace("alpha").insert(1, 2)
    assert store.namespace("alpha").get(1) == 2
    store.close()


# -- retention pin (satellite: truncation waits for remote ack) -------------


def test_truncation_waits_for_remote_ack():
    flaky = FlakyStorage(MemStorage(), sleep=lambda d: None)
    fs = SimFS()
    store = DurableKVStore(
        "db", fs=fs, remote=flaky, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    # Remote goes dark before anything ships: every seal and the
    # checkpoint ship fail, so nothing is remote-acknowledged and
    # truncation must keep every segment.
    flaky.error_rate = 1.0
    ns = store.namespace("alpha")
    for i in range(40):
        ns.insert(i, i)
    before = segment_files(fs, "db")
    store.checkpoint()
    after_failed = segment_files(fs, "db")
    assert set(before) <= set(after_failed), (
        "local truncation dropped segments the remote never acknowledged"
    )
    assert store.remote_metrics.upload_failures_total > 0
    assert store.uploader.safe_truncate_lsn() == 0
    # Remote heals: the next checkpoint ships and truncation proceeds.
    flaky.heal()
    lsn = store.checkpoint()
    assert store.uploader.safe_truncate_lsn() >= lsn
    assert len(segment_files(fs, "db")) < len(after_failed)
    # And the shipped state is attachable.
    replica = DurableKVStore(
        "db", fs=SimFS(), remote=flaky, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    assert _read_state(replica) == {("alpha", i): i for i in range(40)}
    store.close()
    replica.close()


def test_segment_backlog_ships_in_order_after_outage():
    flaky = FlakyStorage(MemStorage(), sleep=lambda d: None)
    fs = SimFS()
    shadow = {}
    store = DurableKVStore(
        "db", fs=fs, remote=flaky, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    store.checkpoint()  # publish a baseline manifest while healthy
    flaky.error_rate = 1.0
    ns = store.namespace("alpha")
    for i in range(60):  # spans several rotations, all ships failing
        ns.insert(i, i * 7)
        shadow[("alpha", i)] = i * 7
    assert store.remote_metrics.pending_segments > 0
    flaky.heal()
    store.wal.rotate()
    assert store.ship()  # backlog drains in LSN order, one manifest
    assert store.remote_metrics.pending_segments == 0
    replica = DurableKVStore(
        "db", fs=SimFS(), remote=flaky, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    assert _read_state(replica) == shadow
    store.close()
    replica.close()


# -- flaky convergence (acceptance tier b) ----------------------------------


@pytest.mark.parametrize("seed", [2, 3, 4])
def test_flaky_storage_converges_at_10pct_faults(seed):
    flaky = FlakyStorage(
        MemStorage(),
        error_rate=0.06,
        timeout_rate=0.06,
        torn_rate=0.5,
        seed=seed,
        sleep=lambda d: None,
    )
    shadow = {}
    store = DurableKVStore(
        "db", fs=SimFS(), remote=flaky, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    for op in OPS:
        _apply(store, shadow, op)
    store.wal.rotate()
    for _ in range(50):  # bounded convergence loop, not forever
        if store.ship():
            break
    else:
        pytest.fail("shipping never converged under 12% injected faults")
    assert flaky.faults_injected > 0, "fault schedule never fired"
    replica = DurableKVStore(
        "db", fs=SimFS(), remote=flaky, remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    assert _read_state(replica) == shadow
    assert replica.remote_metrics.retries_total >= 0
    store.close()
    replica.close()


# -- crash-point sweep (acceptance tier c) ----------------------------------


def _run_until_crash(fs):
    """OPS against a store whose remote lives on the *same* SimFS.

    Returns (prefix shadow states, acked count).  Every remote upload
    is a numbered syscall on ``fs``, so sweeping crash points covers
    every upload syscall as well as every local WAL/checkpoint one.
    """
    shadow = {}
    states = [dict(shadow)]
    acked = 0
    try:
        remote = LocalFsStorage("remote", fs=fs)
        store = DurableKVStore(
            "db", fs=fs, remote=remote, remote_policy=_policy(),
            segment_size=SEGMENT_SIZE,
        )
        for op in OPS:
            _apply(store, shadow, op)
            states.append(dict(shadow))
            acked += 1
        store.wal.rotate()
        store.ship()
        store.close()
    except SimulatedCrash:
        pass
    return states, acked


def _wipe_local(fs, directory):
    prefix = directory.rstrip("/") + "/"
    for path in [p for p in list(fs._files) if p.startswith(prefix)]:
        del fs._files[path]


def test_crash_sweep_every_upload_syscall():
    baseline = SimFS()
    states_full, acked_full = _run_until_crash(baseline)
    assert acked_full == len(OPS), "fault-free run must complete"
    total = baseline.syscalls
    assert total > 40  # remote puts materially widen the sweep
    for crash_at in range(1, total + 1):
        fs = SimFS(FaultSpec(crash_at, tail_mode="torn", seed=crash_at))
        states, acked = _run_until_crash(fs)
        fs.reboot()
        # The primary's machine is gone: wipe its local directory and
        # attach a replica from whatever the remote durably holds.
        _wipe_local(fs, "db")
        replica = DurableKVStore(
            "db", fs=fs,
            remote=LocalFsStorage("remote", fs=fs),
            remote_policy=_policy(),
            segment_size=SEGMENT_SIZE,
        )
        got = _read_state(replica)
        allowed = states[: acked + 1]
        assert got in allowed, (
            f"crash@{crash_at}: attached state is not a consistent "
            f"prefix of acknowledged history ({got})"
        )
        # The attached replica serves writes immediately.
        replica.namespace("alpha").insert(999, 1)
        assert replica.namespace("alpha").get(999) == 1
        replica.close()


def test_crash_sweep_every_attach_syscall():
    """Tier (c) for the attach half: crash at every restore/recovery
    syscall on the replica, then reboot *without wiping* -- whatever
    the torn attach left behind must be detected (marker) and
    re-attached, never silently recovered as partial state."""
    baseline = SimFS()
    states, acked = _run_until_crash(baseline)
    assert acked == len(OPS), "fault-free primary run must complete"
    _wipe_local(baseline, "db")
    attach_start = baseline.syscalls
    replica = DurableKVStore(
        "db", fs=baseline,
        remote=LocalFsStorage("remote", fs=baseline),
        remote_policy=_policy(),
        segment_size=SEGMENT_SIZE,
    )
    expect = _read_state(replica)
    replica.close()
    assert expect == states[-1]
    attach_end = baseline.syscalls
    assert attach_end - attach_start > 5  # the sweep has real width
    for crash_at in range(attach_start + 1, attach_end + 1):
        fs = SimFS(FaultSpec(crash_at, tail_mode="torn", seed=crash_at))
        _, ack = _run_until_crash(fs)
        assert ack == len(OPS)  # the crash point lies in the attach
        _wipe_local(fs, "db")
        try:
            replica = DurableKVStore(
                "db", fs=fs,
                remote=LocalFsStorage("remote", fs=fs),
                remote_policy=_policy(),
                segment_size=SEGMENT_SIZE,
            )
        except SimulatedCrash:
            fs.reboot()
            # Second boot over the torn directory, no wipe this time.
            replica = DurableKVStore(
                "db", fs=fs,
                remote=LocalFsStorage("remote", fs=fs),
                remote_policy=_policy(),
                segment_size=SEGMENT_SIZE,
            )
        got = _read_state(replica)
        assert got == expect, (
            f"crash@{crash_at}: attach was not all-or-nothing ({got})"
        )
        try:
            replica.close()
        except SimulatedCrash:
            pass  # the crash point fell in close(), after verification


# -- metrics surface --------------------------------------------------------


def test_store_metrics_page_includes_remote_series():
    store = DurableKVStore(
        "db", fs=SimFS(), remote=MemStorage(), remote_policy=_policy()
    )
    store.namespace("alpha").insert(1, 1)
    store.checkpoint()
    page = store.metrics_to_prometheus()
    assert "dytis_remote_manifests_published_total 1" in page
    assert "dytis_remote_generation 1" in page
    assert "dytis_wal_checkpoints_total 1" in page
    from repro.obs.exposition import parse_prometheus

    samples = parse_prometheus(page)
    assert samples[("dytis_remote_uploads_total", ())] >= 2
    store.close()


def test_no_remote_means_no_uploader_and_no_remote_series():
    store = DurableKVStore("db", fs=SimFS())
    store.namespace("alpha").insert(1, 1)
    assert store.uploader is None
    assert store.remote_metrics is None
    assert "remote_" not in store.metrics_to_prometheus()
    store.close()
