"""Single-shard failover from remote, and bounded shard RPC waits.

The failover contract: each shard ships to its own remote prefix, so
when one worker's local directory is destroyed, ``restart_shard``
brings its replacement up from the remote copy -- while the sibling
shards keep serving untouched.  The rpc-timeout satellite: a worker
that is alive but wedged (here: SIGSTOPped) must surface as a
:class:`ShardError` naming the shard instead of hanging the router
forever.
"""

import os
import shutil
import signal
import time

import pytest

from repro.core import DyTISConfig
from repro.remote import LocalFsStorage, RetryPolicy
from repro.shard import ShardedIndex, ShardError

CFG = DyTISConfig(key_bits=32, first_level_bits=3, bucket_capacity=8, l_start=1)

#: Hash routing so every shard owns a slice of the small test keys.
N = 600


def _fleet(tmp_path, **kw):
    return ShardedIndex(
        2,
        config=CFG,
        mode="hash",
        durable_dir=str(tmp_path / "data"),
        remote=LocalFsStorage(str(tmp_path / "remote")),
        remote_policy=RetryPolicy(base_delay=0.001),
        **kw,
    )


def test_shard_failover_from_remote_while_sibling_serves(tmp_path):
    with _fleet(tmp_path) as idx:
        idx.insert_many(list(range(N)), [i * 3 for i in range(N)])
        idx.checkpoint()  # ships each shard's snapshot to its prefix
        idx.insert_many(
            list(range(N, N + 100)), [i * 3 for i in range(N, N + 100)]
        )
        idx.flush()
        victim = idx.router.shard_of(0)
        # The victim's machine dies and its disk is gone.
        shutil.rmtree(tmp_path / "data" / f"shard-{victim:03d}")
        idx.restart_shard(victim)
        # Every checkpointed key the victim owns comes back from remote.
        mine = [k for k in range(N) if idx.router.shard_of(k) == victim]
        assert mine, "hash routing should give the victim keys"
        assert all(idx.get(k) == k * 3 for k in mine)
        # Sibling shards never lost anything, including the tail past
        # the checkpoint (their local WALs are intact).
        others = [
            k for k in range(N + 100) if idx.router.shard_of(k) != victim
        ]
        assert all(idx.get(k) == k * 3 for k in others)
        # The recovered worker reports its attach in the metrics frame.
        counters = idx.shard_metrics()[victim].counters
        assert counters["remote_attaches_total"] == 1
        assert counters["remote_generation"] >= 1


def test_shard_remote_prefixes_are_disjoint(tmp_path):
    with _fleet(tmp_path) as idx:
        idx.insert_many(list(range(N)), list(range(N)))
        idx.checkpoint()
    remote = LocalFsStorage(str(tmp_path / "remote"))
    prefixes = {key.split("/", 1)[0] for key in remote.list()}
    assert prefixes == {"shard-000", "shard-001"}


def test_remote_requires_durable_dir(tmp_path):
    with pytest.raises(ValueError, match="durable_dir"):
        ShardedIndex(
            2, config=CFG,
            remote=LocalFsStorage(str(tmp_path / "remote")),
        )


def test_restart_without_remote_still_replays_local_wal(tmp_path):
    """Remote shipping must not regress plain local-WAL restarts."""
    with ShardedIndex(
        2, config=CFG, mode="hash", durable_dir=str(tmp_path / "data")
    ) as idx:
        idx.insert_many(list(range(200)), list(range(200)))
        idx.flush()
        idx.restart_shard(0)
        assert all(idx.get(k) == k for k in range(200))


# -- rpc timeout (satellite) ------------------------------------------------


def test_stalled_worker_times_out_with_shard_name(tmp_path):
    with ShardedIndex(
        2, config=CFG, mode="hash",
        durable_dir=str(tmp_path / "data"),
        rpc_timeout=0.3,
        serve_columns=False,  # force every read through the pipes
    ) as idx:
        idx.insert_many(list(range(100)), list(range(100)))
        victim = idx.router.shard_of(5)
        pid = idx._procs[victim].pid
        os.kill(pid, signal.SIGSTOP)
        try:
            with pytest.raises(
                ShardError, match=rf"shard {victim} timed out after 0.3"
            ):
                idx.get(5)
        finally:
            os.kill(pid, signal.SIGCONT)
        # The timeout poisoned the pipe: the worker's late reply is
        # owed to the call that gave up, so consuming it later would
        # answer the wrong request.  The shard therefore reads as down
        # -- enforced, not just documented -- until restart_shard.
        with pytest.raises(
            ShardError, match=rf"shard {victim} is not running"
        ):
            idx.get(5)
        # The wedged worker is replaced and the fleet serves again.
        idx.restart_shard(victim)
        idx.flush()
        assert all(idx.get(k) == k for k in range(100))


def test_scatter_timeout_poisons_victim_and_drains_siblings(tmp_path):
    with ShardedIndex(
        2, config=CFG, mode="hash",
        durable_dir=str(tmp_path / "data"),
        rpc_timeout=0.3,
        serve_columns=False,
    ) as idx:
        idx.insert_many(list(range(100)), list(range(100)))
        victim = idx.router.shard_of(5)
        sibling = 1 - victim
        pid = idx._procs[victim].pid
        os.kill(pid, signal.SIGSTOP)
        try:
            with pytest.raises(
                ShardError, match=rf"shard {victim} timed out"
            ):
                len(idx)  # scatters to every shard
        finally:
            os.kill(pid, signal.SIGCONT)
        # The sibling's reply was drained inside the failed scatter,
        # so its pipe stays in sync: the next call must get its own
        # fresh answer, not the abandoned len reply.
        sib_key = next(
            k for k in range(100) if idx.router.shard_of(k) == sibling
        )
        assert idx.get(sib_key) == sib_key
        # The victim stays down until explicitly restarted.
        with pytest.raises(
            ShardError, match=rf"shard {victim} is not running"
        ):
            idx.get(5)
        idx.restart_shard(victim)
        idx.flush()
        assert all(idx.get(k) == k for k in range(100))


def test_rpc_timeout_disabled_by_default(tmp_path):
    with ShardedIndex(2, config=CFG, mode="hash") as idx:
        assert idx._rpc_timeout is None
        idx.insert(1, "a")
        assert idx.get(1) == "a"
