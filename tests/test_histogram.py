"""Tests for the log-scale latency histogram (repro.bench.histogram)."""

import pytest

from repro.bench.histogram import LatencyHistogram, _fmt_ns


class TestBuckets:
    def test_power_of_two_buckets(self):
        h = LatencyHistogram([1, 2, 3, 4, 7, 8, 1000])
        ranges = [(b.low_ns, b.high_ns) for b in h.buckets]
        assert (1, 2) in ranges
        assert (2, 4) in ranges
        assert (4, 8) in ranges
        assert (8, 16) in ranges
        assert (512, 1024) in ranges
        assert h.n == 7

    def test_counts(self):
        h = LatencyHistogram([2, 3, 2, 3])
        assert len(h.buckets) == 1
        assert h.buckets[0].count == 4

    def test_zero_and_negative_clamped(self):
        h = LatencyHistogram([0, 1])
        assert h.buckets[0].low_ns == 1
        assert h.buckets[0].count == 2

    def test_empty(self):
        h = LatencyHistogram([])
        assert h.buckets == []
        assert "(no samples)" in h.render()


class TestRender:
    def test_renders_every_bucket(self):
        h = LatencyHistogram([100] * 90 + [10**7] * 10)
        text = h.render(title="T")
        assert text.startswith("T")
        assert "90" in text and "10" in text
        assert "ms" in text  # 10^7 ns formats as ms

    def test_units(self):
        assert _fmt_ns(500) == "500ns"
        assert _fmt_ns(2_000) == "2µs"
        assert _fmt_ns(3_000_000) == "3ms"
        assert _fmt_ns(2_000_000_000) == "2s"


class TestModeCount:
    def test_unimodal(self):
        h = LatencyHistogram([100, 120, 130, 200, 210] * 20)
        assert h.mode_count() == 1

    def test_bimodal_with_gap(self):
        fast = [1_000 + i for i in range(95)]
        slow = [5_000_000 + i for i in range(5)]
        h = LatencyHistogram(fast + slow)
        assert h.mode_count(min_share=0.01) == 2

    def test_min_share_filters_noise(self):
        fast = [1_000] * 999
        slow = [10**8]  # one outlier: 0.1% share
        h = LatencyHistogram(fast + slow)
        assert h.mode_count(min_share=0.01) == 1
        assert h.mode_count(min_share=0.0005) == 2

    def test_empty(self):
        assert LatencyHistogram([]).mode_count() == 0
