"""Micro-scale smoke tests for every experiment driver.

The benchmarks run these drivers at real scale; here each runs at toy
scale so a broken driver fails the unit suite, not just a long bench.
"""

import pytest

from repro.bench.experiments import (
    ExperimentScale,
    fig8_ycsb,
    fig9_hashing,
    fig10_bulkload,
    fig11_dynamic,
    fig12_concurrency,
    group23,
    load_timeline,
    lock_overhead,
    params_ablation,
    related_work,
    scan_sweep,
    table2_latency,
    zipf_sweep,
)

SCALE = ExperimentScale(n_keys=2500, n_ops=800, metric_window=800)


def test_fig8_cell():
    result = fig8_ycsb.run_cell("DyTIS", "TX", "A", SCALE)
    assert result.mops > 0


def test_fig8_chart_renders():
    rows = fig8_ycsb.run(
        SCALE, indexes=("DyTIS", "B+-tree"), workloads=("Load",),
        datasets=("TX",),
    )
    chart = fig8_ycsb.format_chart(rows)
    assert "Load" in chart and "DyTIS" in chart


def test_fig9_driver_and_chart():
    rows = fig9_hashing.run(SCALE, datasets=("TX",))
    assert {r.index for r in rows} == {"DyTIS", "CCEH", "EH"}
    assert "Figure 9a" in fig9_hashing.format_chart(rows)


def test_fig10_driver():
    rows = fig10_bulkload.run(SCALE, datasets=("TX",), workloads=("Load",))
    by_ix = {r.index: r for r in rows}
    assert by_ix["ALEX-10"].normalized == pytest.approx(1.0)
    assert len(rows) == 5


def test_fig11_driver():
    rows = fig11_dynamic.run(SCALE, datasets=("TX",))
    panels = {r.panel for r in rows}
    assert panels == {"kdd", "skewness"}
    assert all(r.ratio > 0 for r in rows)


def test_fig12_driver():
    rows = fig12_concurrency.run(SCALE, datasets=("TX",), thread_counts=(1, 2))
    assert {r.threads for r in rows} == {1, 2}
    assert all(r.mops > 0 for r in rows)
    assert "Figure 12" in fig12_concurrency.format_table(rows)


def test_table2_driver():
    rows = table2_latency.run(SCALE, datasets=("TX",), indexes=("DyTIS",))
    assert all(r.latency is not None for r in rows)
    assert "Table 2" in table2_latency.format_table(rows)


def test_params_driver():
    rows = params_ablation.run(
        SCALE, datasets=("TX",), parameters=("util_threshold",)
    )
    assert {r.value for r in rows} == set(params_ablation.SWEEPS["util_threshold"])
    assert "parameter" in params_ablation.format_table(rows)


def test_group23_driver():
    rows = group23.run(SCALE, datasets=("uniform",), workloads=("Load",))
    assert {r.index for r in rows} == {"DyTIS", "ALEX-10", "B+-tree"}


def test_related_work_driver():
    rows = related_work.run(SCALE, datasets=("TX",))
    by_ix = {r.index: r for r in rows}
    assert by_ix["RMI"].insert_mops == 0.0
    assert by_ix["LIPP"].search_mops > 0
    assert "static" in related_work.format_table(rows)


def test_scan_sweep_driver():
    rows = scan_sweep.run(SCALE, datasets=("TX",))
    assert {r.scan_length for r in rows} == {10, 100, 1000}
    assert "items/s" in scan_sweep.format_table(rows)


def test_zipf_sweep_driver():
    rows = zipf_sweep.run(SCALE, datasets=("TX",))
    assert {r.theta for r in rows} == {"uniform", "0.5", "0.99", "1.2"}


def test_lock_overhead_driver():
    rows = lock_overhead.run(SCALE, datasets=("TX",))
    assert {r.engine for r in rows} == {"DyTIS", "DyTIS-MT"}
    assert all(r.insert_mops > 0 for r in rows)


def test_load_timeline_driver():
    rows = load_timeline.run(SCALE, datasets=("TX",), indexes=("DyTIS",))
    assert len(rows) == 10
    assert "d0" in load_timeline.format_table(rows)
