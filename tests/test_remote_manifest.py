"""Manifest integrity: any byte flip is detected, future versions refuse.

The hypothesis property mirrors the snapshot layer's v2 discipline
(``test_snapshot.py``): encode a manifest, flip any single byte
anywhere, and loading must *always* raise -- never return a manifest
that differs silently.  A future format version must refuse loudly
(:class:`ManifestVersionError`), because silently restoring an older
generation would resurrect deleted history; and since the CRC is
checked *before* the version, a flipped version digit reads as
corruption (skippable) rather than as a future format (fatal).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.remote import (
    MANIFEST_VERSION,
    ManifestCorruptError,
    ManifestError,
    ManifestVersionError,
    MemStorage,
    RetryPolicy,
    decode_manifest,
    encode_manifest,
    manifest_generation,
    manifest_key,
    newest_manifest,
)
from repro.remote.manifest import build_manifest

_POLICY = RetryPolicy(sleep=lambda d: None)


def _sample_manifest(generation=3):
    return build_manifest(
        generation,
        shipped_lsn=41,
        checkpoint={
            "path": "ckpt-00000000000000000020.snap",
            "lsn": 20,
            "size": 512,
            "crc32": 0xDEADBEEF,
        },
        segments=[
            {"path": "wal-00000003.log", "size": 100, "crc32": 1,
             "base_lsn": 21, "last_lsn": 30},
            {"path": "wal-00000004.log", "size": 90, "crc32": 2,
             "base_lsn": 31, "last_lsn": 41},
        ],
    )


def test_manifest_round_trips():
    data = encode_manifest(_sample_manifest())
    got = decode_manifest(data)
    assert got["generation"] == 3
    assert got["shipped_lsn"] == 41
    assert got["checkpoint"]["lsn"] == 20
    assert [s["path"] for s in got["segments"]] == [
        "wal-00000003.log", "wal-00000004.log",
    ]
    assert "crc32" not in got  # envelope field, not payload


def test_manifest_key_codec():
    key = manifest_key(7)
    assert key == f"manifest-{7:020d}.json"
    assert manifest_generation(key) == 7
    assert manifest_generation("manifest-junk.json") is None
    assert manifest_generation("ckpt-00000000000000000001.snap") is None
    # Zero-padded keys sort by generation lexically (newest-last).
    assert manifest_key(9) < manifest_key(10)


@settings(max_examples=300, deadline=None)
@given(st.data())
def test_any_single_byte_flip_is_detected(data):
    encoded = bytearray(encode_manifest(_sample_manifest()))
    pos = data.draw(st.integers(0, len(encoded) - 1))
    bit = data.draw(st.integers(0, 7))
    encoded[pos] ^= 1 << bit
    if bytes(encoded) == encode_manifest(_sample_manifest()):
        return  # flip of a flip -- not reachable with one draw, guard anyway
    with pytest.raises(ManifestError):
        decode_manifest(bytes(encoded))


def test_future_version_refused_loudly():
    future = _sample_manifest()
    future["version"] = MANIFEST_VERSION + 1
    with pytest.raises(ManifestVersionError, match="refusing"):
        decode_manifest(encode_manifest(future))


def test_crc_checked_before_version():
    # Corrupt the version *without* fixing the CRC: the reader must
    # call it corruption (skippable), not a future format (fatal).
    data = encode_manifest(_sample_manifest())
    obj = json.loads(data)
    obj["version"] = MANIFEST_VERSION + 1
    tampered = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
    with pytest.raises(ManifestCorruptError):
        decode_manifest(tampered)


def test_segment_chain_gap_is_corruption():
    man = _sample_manifest()
    man["segments"][1]["base_lsn"] = 33  # 31 expected after last_lsn 30
    with pytest.raises(ManifestCorruptError, match="gap"):
        decode_manifest(encode_manifest(man))


def test_malformed_entries_are_corruption():
    for mutate in (
        lambda m: m.__setitem__("generation", 0),
        lambda m: m.__setitem__("shipped_lsn", "41"),
        lambda m: m["checkpoint"].__setitem__("path", ""),
        lambda m: m["checkpoint"].pop("lsn"),
        lambda m: m["segments"][0].pop("crc32"),
        lambda m: m.__setitem__("segments", {"not": "a list"}),
    ):
        man = _sample_manifest()
        mutate(man)
        with pytest.raises(ManifestCorruptError):
            decode_manifest(encode_manifest(man))


# -- newest-manifest selection ----------------------------------------------


def test_newest_manifest_skips_corrupt_generations():
    st_ = MemStorage()
    st_.put(manifest_key(1), encode_manifest(_sample_manifest(1)))
    st_.put(manifest_key(2), encode_manifest(_sample_manifest(2)))
    st_.put(manifest_key(3), b"{torn garbage")
    gen, man = newest_manifest(st_, _POLICY)
    assert gen == 2 and man["generation"] == 2


def test_newest_manifest_virgin_remote():
    assert newest_manifest(MemStorage(), _POLICY) == (0, None)


def test_newest_manifest_propagates_future_version():
    st_ = MemStorage()
    future = _sample_manifest(5)
    future["version"] = MANIFEST_VERSION + 1
    st_.put(manifest_key(5), encode_manifest(future))
    st_.put(manifest_key(4), encode_manifest(_sample_manifest(4)))
    # A newer writer owns this remote: falling back to generation 4
    # would resurrect history it may have deleted.  Refuse instead.
    with pytest.raises(ManifestVersionError):
        newest_manifest(st_, _POLICY)
