"""Tests for DyTIS range operations (count_range, delete_range)."""

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DyTIS, DyTISConfig

CFG = DyTISConfig(key_bits=24, first_level_bits=3, bucket_capacity=8, l_start=1)


@pytest.fixture
def loaded():
    idx = DyTIS(CFG)
    keys = random.Random(0).sample(range(1 << 24), 6000)
    for k in keys:
        idx.insert(k, k)
    return idx, sorted(keys)


class TestCountRange:
    def test_matches_reference(self, loaded):
        idx, ref = loaded
        rng = random.Random(1)
        for _ in range(30):
            lo = rng.randrange(1 << 24)
            hi = rng.randrange(1 << 24)
            expected = bisect.bisect_left(ref, hi) - bisect.bisect_left(ref, lo)
            expected = max(expected, 0) if lo < hi else 0
            assert idx.count_range(lo, hi) == expected, (lo, hi)

    def test_full_and_empty_ranges(self, loaded):
        idx, ref = loaded
        assert idx.count_range(0, 1 << 24) == len(ref)
        assert idx.count_range(5, 5) == 0
        assert idx.count_range(10, 5) == 0

    def test_boundaries_half_open(self, loaded):
        idx, ref = loaded
        k = ref[100]
        assert idx.count_range(k, k + 1) == 1
        assert (
            idx.count_range(ref[100], ref[200]) == 100
        )  # end key excluded

    def test_empty_index(self):
        idx = DyTIS(CFG)
        assert idx.count_range(0, 1000) == 0

    def test_counts_after_deletes(self, loaded):
        idx, ref = loaded
        for k in ref[:500]:
            idx.delete(k)
        assert idx.count_range(0, 1 << 24) == len(ref) - 500


class TestDeleteRange:
    def test_deletes_exactly_the_range(self, loaded):
        idx, ref = loaded
        lo, hi = ref[1000], ref[2000]
        removed = idx.delete_range(lo, hi)
        assert removed == 1000
        assert idx.count_range(lo, hi) == 0
        survivors = [k for k in ref if not (lo <= k < hi)]
        assert [k for k, _ in idx.items()] == survivors
        idx.check_invariants()

    def test_noop_on_empty_range(self, loaded):
        idx, ref = loaded
        assert idx.delete_range(ref[0], ref[0]) == 0
        assert len(idx) == len(ref)

    def test_everything(self, loaded):
        idx, ref = loaded
        assert idx.delete_range(0, 1 << 24) == len(ref)
        assert len(idx) == 0
        idx.check_invariants()


@given(
    st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=300, unique=True),
    st.integers(0, 2**16 - 1),
    st.integers(0, 2**16 - 1),
)
@settings(max_examples=100, deadline=None)
def test_count_range_property(keys, a, b):
    cfg = DyTISConfig(key_bits=16, first_level_bits=2, bucket_capacity=4, l_start=1)
    idx = DyTIS(cfg)
    for k in keys:
        idx.insert(k, k)
    lo, hi = min(a, b), max(a, b)
    expected = sum(1 for k in keys if lo <= k < hi)
    assert idx.count_range(lo, hi) == expected


# -- cross-index property: range ops == items() slicing ----------------------
#
# The single reference semantics for scan_range/count_range (closed-open
# [low, high), ascending) is "slice the sorted items".  Every index --
# native range paths and RangeOpsMixin pagers alike -- must match it on
# arbitrary random ranges, including boundaries sitting exactly on keys.

from tests.test_protocol import ALL_INDEX_CLASSES, _make  # noqa: E402
from repro.learned.rmi import RMIndex  # noqa: E402

_SPAN = 2**18


@pytest.mark.parametrize("cls", ALL_INDEX_CLASSES)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_range_ops_match_items_slicing(cls, data):
    keys = data.draw(
        st.lists(
            st.integers(0, _SPAN - 1), min_size=1, max_size=150, unique=True
        )
    )
    idx = _make(cls)
    if cls is RMIndex:  # read-only: populate through bulk_load
        ordered = sorted(keys)
        idx.bulk_load(ordered, [k * 7 for k in ordered])
    else:
        for k in keys:
            idx.insert(k, k * 7)
    ref = sorted((k, k * 7) for k in keys)
    ref_keys = [k for k, _ in ref]
    boundary = st.one_of(st.integers(0, _SPAN), st.sampled_from(keys))
    for _ in range(5):
        a = data.draw(boundary)
        b = data.draw(boundary)
        lo, hi = min(a, b), max(a, b)
        i = bisect.bisect_left(ref_keys, lo)
        j = bisect.bisect_left(ref_keys, hi)
        assert idx.scan_range(lo, hi) == ref[i:j], (lo, hi)
        assert idx.count_range(lo, hi) == j - i, (lo, hi)
