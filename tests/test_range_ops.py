"""Tests for DyTIS range operations (count_range, delete_range)."""

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DyTIS, DyTISConfig

CFG = DyTISConfig(key_bits=24, first_level_bits=3, bucket_capacity=8, l_start=1)


@pytest.fixture
def loaded():
    idx = DyTIS(CFG)
    keys = random.Random(0).sample(range(1 << 24), 6000)
    for k in keys:
        idx.insert(k, k)
    return idx, sorted(keys)


class TestCountRange:
    def test_matches_reference(self, loaded):
        idx, ref = loaded
        rng = random.Random(1)
        for _ in range(30):
            lo = rng.randrange(1 << 24)
            hi = rng.randrange(1 << 24)
            expected = bisect.bisect_left(ref, hi) - bisect.bisect_left(ref, lo)
            expected = max(expected, 0) if lo < hi else 0
            assert idx.count_range(lo, hi) == expected, (lo, hi)

    def test_full_and_empty_ranges(self, loaded):
        idx, ref = loaded
        assert idx.count_range(0, 1 << 24) == len(ref)
        assert idx.count_range(5, 5) == 0
        assert idx.count_range(10, 5) == 0

    def test_boundaries_half_open(self, loaded):
        idx, ref = loaded
        k = ref[100]
        assert idx.count_range(k, k + 1) == 1
        assert (
            idx.count_range(ref[100], ref[200]) == 100
        )  # end key excluded

    def test_empty_index(self):
        idx = DyTIS(CFG)
        assert idx.count_range(0, 1000) == 0

    def test_counts_after_deletes(self, loaded):
        idx, ref = loaded
        for k in ref[:500]:
            idx.delete(k)
        assert idx.count_range(0, 1 << 24) == len(ref) - 500


class TestDeleteRange:
    def test_deletes_exactly_the_range(self, loaded):
        idx, ref = loaded
        lo, hi = ref[1000], ref[2000]
        removed = idx.delete_range(lo, hi)
        assert removed == 1000
        assert idx.count_range(lo, hi) == 0
        survivors = [k for k in ref if not (lo <= k < hi)]
        assert [k for k, _ in idx.items()] == survivors
        idx.check_invariants()

    def test_noop_on_empty_range(self, loaded):
        idx, ref = loaded
        assert idx.delete_range(ref[0], ref[0]) == 0
        assert len(idx) == len(ref)

    def test_everything(self, loaded):
        idx, ref = loaded
        assert idx.delete_range(0, 1 << 24) == len(ref)
        assert len(idx) == 0
        idx.check_invariants()


@given(
    st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=300, unique=True),
    st.integers(0, 2**16 - 1),
    st.integers(0, 2**16 - 1),
)
@settings(max_examples=100, deadline=None)
def test_count_range_property(keys, a, b):
    cfg = DyTISConfig(key_bits=16, first_level_bits=2, bucket_capacity=4, l_start=1)
    idx = DyTIS(cfg)
    for k in keys:
        idx.insert(k, k)
    lo, hi = min(a, b), max(a, b)
    expected = sum(1 for k in keys if lo <= k < hi)
    assert idx.count_range(lo, hi) == expected
