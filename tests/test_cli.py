"""Tests for the ``python -m repro.bench`` command-line interface."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig8", "table2", "related"):
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "nope"])

    def test_run_one_experiment(self, capsys, tmp_path):
        assert main(["--only", "table1", "--n", "2500", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert (tmp_path / "table1.txt").exists()

    def test_report_aggregation(self, capsys, tmp_path):
        report = tmp_path / "report.md"
        assert main(
            ["--only", "fig2", "--n", "2500", "--report", str(report)]
        ) == 0
        text = report.read_text()
        assert text.startswith("# DyTIS reproduction results")
        assert "## fig2" in text
        assert "```" in text

    def test_every_registered_experiment_has_run_and_format(self):
        for name, module in EXPERIMENTS.items():
            assert callable(getattr(module, "run", None)), name
            assert callable(getattr(module, "format_table", None)), name
            assert (module.__doc__ or "").strip(), name
