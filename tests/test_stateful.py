"""Stateful property testing with hypothesis RuleBasedStateMachines.

Hypothesis drives arbitrary interleavings of insert/update/delete/get/
scan against DyTIS and the B+-tree, shrinking any divergence from a
dict model to a minimal failing program.
"""

import bisect

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.btree import BPlusTree
from repro.core import DyTIS, DyTISConfig

_KEYS = st.integers(min_value=0, max_value=2**14 - 1)


class _IndexMachine(RuleBasedStateMachine):
    """Shared rules; subclasses provide the index under test."""

    def __init__(self):
        super().__init__()
        self.model = {}
        self.index = self.make_index()

    def make_index(self):  # pragma: no cover - abstract
        raise NotImplementedError

    @rule(key=_KEYS, value=st.integers(0, 1000))
    def insert(self, key, value):
        self.index.insert(key, value)
        self.model[key] = value

    @rule(key=_KEYS)
    def delete(self, key):
        assert self.index.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=_KEYS)
    def get(self, key):
        assert self.index.get(key) == self.model.get(key)

    @rule(key=_KEYS, count=st.integers(0, 20))
    def scan(self, key, count):
        got = self.index.scan(key, count)
        ref = sorted(k for k in self.model if k >= key)[:count]
        assert [k for k, _ in got] == ref
        assert [v for _, v in got] == [self.model[k] for k in ref]

    @precondition(lambda self: len(self.model) > 0)
    @rule()
    def update_existing(self):
        key = next(iter(self.model))
        self.index.insert(key, -1)
        self.model[key] = -1
        assert self.index.get(key) == -1

    @invariant()
    def size_matches(self):
        assert len(self.index) == len(self.model)

    @invariant()
    def iteration_sorted(self):
        assert [k for k, _ in self.index.items()] == sorted(self.model)


class DyTISMachine(_IndexMachine):
    def make_index(self):
        return DyTIS(
            DyTISConfig(
                key_bits=14, first_level_bits=2, bucket_capacity=4, l_start=1
            )
        )

    @invariant()
    def structural_invariants(self):
        self.index.check_invariants()


class BTreeMachine(_IndexMachine):
    def make_index(self):
        return BPlusTree(fanout=4)

    @invariant()
    def structural_invariants(self):
        self.index.check_invariants()


TestDyTISStateful = DyTISMachine.TestCase
TestDyTISStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
