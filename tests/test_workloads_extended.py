"""Tests for workload extensions: hotspot chooser, latest (YCSB D),
harness batch repetition, buddy merging, and describe()."""

import collections

import numpy as np
import pytest

from repro.bench import make_adapter, run_operations, run_ycsb
from repro.core import DyTIS, DyTISConfig
from repro.datasets import generate
from repro.workloads import (
    HotspotChooser,
    Operation,
    OpKind,
    WORKLOADS,
    generate_operations,
    make_workload,
)

CFG = DyTISConfig(key_bits=32, first_level_bits=2, bucket_capacity=8, l_start=1)


class TestHotspotChooser:
    def test_hot_set_dominates(self):
        keys = np.arange(1000, dtype=np.uint64)
        chooser = HotspotChooser(keys, hot_fraction=0.2, hot_opn_fraction=0.8,
                                 seed=0)
        picks = chooser.choose(30000)
        counts = collections.Counter(picks.tolist())
        hot = set(chooser._hot.tolist())
        hot_hits = sum(c for k, c in counts.items() if k in hot)
        assert hot_hits == pytest.approx(24000, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotChooser([], seed=0)
        with pytest.raises(ValueError):
            HotspotChooser([1], hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotspotChooser([1], hot_opn_fraction=1.5)

    def test_all_hot(self):
        keys = np.arange(10, dtype=np.uint64)
        picks = HotspotChooser(keys, hot_fraction=1.0, seed=1).choose(100)
        assert set(picks.tolist()) <= set(range(10))

    def test_generate_operations_accepts_hotspot(self):
        keys = generate("uniform", 2000, seed=0)
        _, ops = generate_operations(
            WORKLOADS["C"], keys, 500, seed=1, distribution="hotspot"
        )
        assert len(ops) == 500


class TestLatestWorkload:
    def test_d_reads_skew_to_recent_inserts(self):
        keys = generate("uniform", 4000, seed=2)
        preload, ops = generate_operations(WORKLOADS["D"], keys, 3000, seed=3)
        inserted = [op.key for op in ops if op.kind is OpKind.INSERT]
        assert inserted  # D includes 5% inserts
        reads = [op.key for op in ops if op.kind is OpKind.READ]
        # Recent keys (inserted during the run) must appear among reads
        # far more often than their share of the population would give.
        recent = set(inserted)
        recent_reads = sum(1 for k in reads if k in recent)
        share = len(recent) / (len(preload) + len(recent))
        assert recent_reads / len(reads) > 3 * share

    def test_d_runs_through_harness(self):
        keys = generate("TX", 3000, seed=4)
        cfg64 = DyTISConfig(
            key_bits=64, first_level_bits=2, bucket_capacity=8, l_start=1
        )
        result = run_ycsb(
            make_adapter("DyTIS", cfg64), make_workload("D"), keys, 800, seed=5
        )
        assert result.n_ops > 0


class TestBatchRepetition:
    def test_min_seconds_repeats_trace(self):
        adapter = make_adapter("DyTIS", CFG)
        for k in range(300):
            adapter.insert(k, k)
        ops = [Operation(OpKind.READ, k % 300) for k in range(100)]
        result = run_operations(adapter, ops, "C", min_seconds=0.05)
        assert result.seconds >= 0.05
        assert result.n_ops > 100
        assert result.n_ops % 100 == 0

    def test_zero_min_seconds_single_pass(self):
        adapter = make_adapter("DyTIS", CFG)
        adapter.insert(1, 1)
        ops = [Operation(OpKind.READ, 1)] * 50
        result = run_operations(adapter, ops, "C")
        assert result.n_ops == 50


class TestBuddyMerge:
    def test_mass_deletion_collapses_segments(self, rng):
        idx = DyTIS(DyTISConfig(key_bits=24, first_level_bits=2,
                                bucket_capacity=8, l_start=1))
        keys = rng.sample(range(1 << 24), 8000)
        for k in keys:
            idx.insert(k, k)
        before = idx.segment_count()
        for k in keys[: int(len(keys) * 0.95)]:
            assert idx.delete(k)
        idx.check_invariants()
        assert idx.segment_count() < before
        assert idx.stats.merges > 0
        survivors = sorted(set(keys) - set(keys[: int(len(keys) * 0.95)]))
        assert [k for k, _ in idx.items()] == survivors

    def test_scan_correct_after_merges(self, rng):
        idx = DyTIS(DyTISConfig(key_bits=20, first_level_bits=1,
                                bucket_capacity=4, l_start=1))
        keys = rng.sample(range(1 << 20), 4000)
        for k in keys:
            idx.insert(k, k)
        for k in keys[:3800]:
            idx.delete(k)
        idx.check_invariants()
        survivors = sorted(set(keys) - set(keys[:3800]))
        assert [k for k, _ in idx.scan(0, 10**6)] == survivors


class TestDescribe:
    def test_describe_summarises_structure(self, small_config, sample_keys):
        idx = DyTIS(small_config)
        for k in sample_keys:
            idx.insert(k, k)
        text = idx.describe()
        assert f"{len(sample_keys):,} keys" in text
        assert "segments=" in text
        assert "EH[" in text
        assert "splits" in text
