"""Tests for DyTIS sorted buckets (repro.core.bucket)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Bucket


class TestBucketBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Bucket(0)

    def test_insert_sorted_order(self):
        b = Bucket(8)
        for k in [5, 1, 9, 3]:
            assert b.insert(k, k * 10) == "inserted"
        assert b.keys == [1, 3, 5, 9]
        assert b.values == [10, 30, 50, 90]

    def test_update_in_place(self):
        b = Bucket(4)
        b.insert(7, "a")
        assert b.insert(7, "b") == "updated"
        assert len(b) == 1
        assert b.get(7) == "b"

    def test_full(self):
        b = Bucket(2)
        b.insert(1, 1)
        b.insert(2, 2)
        assert b.insert(3, 3) == "full"
        assert b.insert(1, "update-ok") == "updated"  # updates bypass full

    def test_get_missing(self):
        b = Bucket(4)
        b.insert(5, 5)
        assert b.get(4) is None
        assert b.get(6) is None

    def test_delete(self):
        b = Bucket(4)
        for k in (1, 2, 3):
            b.insert(k, k)
        assert b.delete(2)
        assert not b.delete(2)
        assert b.keys == [1, 3]

    def test_lower_bound(self):
        b = Bucket(8)
        for k in (10, 20, 30):
            b.insert(k, k)
        assert b.lower_bound(5) == 0
        assert b.lower_bound(10) == 0
        assert b.lower_bound(15) == 1
        assert b.lower_bound(31) == 3

    def test_append_fast_path(self):
        b = Bucket(4)
        b.append(1, "a")
        b.append(5, "b")
        b.check_invariants()
        assert b.get(5) == "b"

    def test_exponential_search_boundaries(self):
        b = Bucket(64)
        for k in range(0, 64, 2):
            b.insert(k, k)
        for k in range(0, 64, 2):
            assert b.find(k) == k // 2
            assert b.find(k + 1) == -1


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=200,
    )
)
@settings(max_examples=100, deadline=None)
def test_bucket_matches_dict_model(ops):
    """Property: a bucket behaves like a size-capped sorted dict."""
    b = Bucket(16)
    model = {}
    for op, key in ops:
        if op == "insert":
            result = b.insert(key, key * 2)
            if key in model:
                assert result == "updated"
                model[key] = key * 2
            elif len(model) < 16:
                assert result == "inserted"
                model[key] = key * 2
            else:
                assert result == "full"
        elif op == "delete":
            assert b.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert b.get(key) == model.get(key)
    b.check_invariants()
    assert b.keys == sorted(model)
