"""Property-based tests for the order-preserving key codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import CodecError, CompositeCodec, StringCodec, UintCodec

_short_text = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=0x7F),
    max_size=4,
).filter(lambda s: len(s.encode()) <= 4)


@given(st.lists(_short_text, min_size=2, max_size=20, unique=True))
@settings(max_examples=200, deadline=None)
def test_string_codec_order_preserving(words):
    codec = StringCodec(max_length=4)
    by_bytes = sorted(words, key=lambda w: w.encode())
    by_code = sorted(words, key=codec.encode)
    assert by_code == by_bytes


@given(_short_text)
@settings(max_examples=200, deadline=None)
def test_string_codec_roundtrip(word):
    codec = StringCodec(max_length=4)
    assert codec.decode(codec.encode(word)) == word


@given(
    st.lists(
        st.tuples(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1)),
        min_size=2,
        max_size=20,
        unique=True,
    )
)
@settings(max_examples=200, deadline=None)
def test_composite_codec_lexicographic(tuples):
    codec = CompositeCodec(UintCodec(12), UintCodec(12))
    assert sorted(tuples, key=codec.encode) == sorted(tuples)


@given(st.tuples(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1)))
@settings(max_examples=200, deadline=None)
def test_composite_codec_roundtrip(t):
    codec = CompositeCodec(UintCodec(12), UintCodec(12))
    assert codec.decode(codec.encode(t)) == t


@given(st.integers(0, 2**20 - 1))
@settings(max_examples=100, deadline=None)
def test_uint_codec_identity(value):
    codec = UintCodec(20)
    assert codec.encode(value) == value
    assert codec.decode(value) == value


# ---------------------------------------------------------------------------
# Boundary widths, empty strings, and rejection properties
# ---------------------------------------------------------------------------


@given(st.integers(1, 64), st.data())
@settings(max_examples=200, deadline=None)
def test_uint_codec_roundtrip_any_width(bits, data):
    """Round-trip holds at every width, including the 1- and 64-bit ends."""
    codec = UintCodec(bits)
    value = data.draw(st.integers(0, 2**bits - 1))
    assert codec.decode(codec.encode(value)) == value


@pytest.mark.parametrize("bits", [1, 64])
def test_uint_codec_boundary_widths(bits):
    codec = UintCodec(bits)
    top = 2**bits - 1
    assert codec.encode(0) == 0
    assert codec.decode(codec.encode(top)) == top
    with pytest.raises(CodecError):
        codec.encode(2**bits)


@given(st.integers())
@settings(max_examples=200, deadline=None)
def test_uint_codec_rejects_out_of_range(value):
    codec = UintCodec(16)
    if 0 <= value < 2**16:
        assert codec.encode(value) == value
    else:
        with pytest.raises(CodecError):
            codec.encode(value)


def test_uint_codec_rejects_non_ints():
    codec = UintCodec(16)
    for bad in ("7", 7.0, True, None):
        with pytest.raises(CodecError):
            codec.encode(bad)


def test_string_codec_empty_string_roundtrip():
    """The empty string is a legal key and sorts before everything."""
    codec = StringCodec(max_length=4)
    assert codec.encode("") == 0
    assert codec.decode(codec.encode("")) == ""
    assert codec.encode("") < codec.encode("\x01")


@given(st.integers(1, 8), st.data())
@settings(max_examples=200, deadline=None)
def test_string_codec_roundtrip_any_max_length(max_length, data):
    codec = StringCodec(max_length=max_length)
    word = data.draw(
        st.text(
            alphabet=st.characters(min_codepoint=1, max_codepoint=0x7F),
            max_size=max_length,
        )
    )
    assert codec.decode(codec.encode(word)) == word


@given(st.text(min_size=5))
@settings(max_examples=100, deadline=None)
def test_string_codec_rejects_over_length(word):
    codec = StringCodec(max_length=4)
    with pytest.raises(CodecError):
        codec.encode(word)


def test_string_codec_rejects_embedded_nul():
    with pytest.raises(CodecError):
        StringCodec(max_length=4).encode("a\x00b")


def test_composite_codec_boundary_components():
    """Components at their extremes round-trip and order correctly."""
    codec = CompositeCodec(UintCodec(1), UintCodec(63))
    lo, hi = (0, 0), (1, 2**63 - 1)
    assert codec.decode(codec.encode(lo)) == lo
    assert codec.decode(codec.encode(hi)) == hi
    assert codec.encode(lo) < codec.encode((0, 2**63 - 1)) < codec.encode((1, 0))


@given(st.tuples(st.integers(), st.integers()))
@settings(max_examples=200, deadline=None)
def test_composite_codec_rejects_out_of_range_components(t):
    codec = CompositeCodec(UintCodec(12), UintCodec(12))
    in_range = all(0 <= part < 2**12 for part in t)
    if in_range:
        assert codec.decode(codec.encode(t)) == t
    else:
        with pytest.raises(CodecError):
            codec.encode(t)


def test_composite_codec_rejects_wrong_arity():
    codec = CompositeCodec(UintCodec(12), UintCodec(12))
    with pytest.raises(CodecError):
        codec.encode((1,))
    with pytest.raises(CodecError):
        codec.encode((1, 2, 3))


def test_composite_with_empty_string_component():
    codec = CompositeCodec(StringCodec(max_length=2), UintCodec(8))
    key = ("", 255)
    assert codec.decode(codec.encode(key)) == key
