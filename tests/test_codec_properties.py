"""Property-based tests for the order-preserving key codecs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import CompositeCodec, StringCodec, UintCodec

_short_text = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=0x7F),
    max_size=4,
).filter(lambda s: len(s.encode()) <= 4)


@given(st.lists(_short_text, min_size=2, max_size=20, unique=True))
@settings(max_examples=200, deadline=None)
def test_string_codec_order_preserving(words):
    codec = StringCodec(max_length=4)
    by_bytes = sorted(words, key=lambda w: w.encode())
    by_code = sorted(words, key=codec.encode)
    assert by_code == by_bytes


@given(_short_text)
@settings(max_examples=200, deadline=None)
def test_string_codec_roundtrip(word):
    codec = StringCodec(max_length=4)
    assert codec.decode(codec.encode(word)) == word


@given(
    st.lists(
        st.tuples(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1)),
        min_size=2,
        max_size=20,
        unique=True,
    )
)
@settings(max_examples=200, deadline=None)
def test_composite_codec_lexicographic(tuples):
    codec = CompositeCodec(UintCodec(12), UintCodec(12))
    assert sorted(tuples, key=codec.encode) == sorted(tuples)


@given(st.tuples(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1)))
@settings(max_examples=200, deadline=None)
def test_composite_codec_roundtrip(t):
    codec = CompositeCodec(UintCodec(12), UintCodec(12))
    assert codec.decode(codec.encode(t)) == t


@given(st.integers(0, 2**20 - 1))
@settings(max_examples=100, deadline=None)
def test_uint_codec_identity(value):
    codec = UintCodec(20)
    assert codec.encode(value) == value
    assert codec.decode(value) == value
