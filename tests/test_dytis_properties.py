"""Property-based tests: DyTIS versus a dict/sorted-list model."""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DyTIS, DyTISConfig

_CFG = DyTISConfig(key_bits=16, first_level_bits=2, bucket_capacity=4, l_start=1)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 2**16 - 1), st.integers(0, 100)),
        st.tuples(st.just("delete"), st.integers(0, 2**16 - 1), st.just(0)),
        st.tuples(st.just("get"), st.integers(0, 2**16 - 1), st.just(0)),
        st.tuples(st.just("scan"), st.integers(0, 2**16 - 1), st.integers(0, 20)),
    ),
    max_size=300,
)


@given(_ops)
@settings(max_examples=150, deadline=None)
def test_dytis_matches_dict_model(ops):
    """Every operation agrees with a reference dict + sorted key list."""
    index = DyTIS(_CFG)
    model = {}
    for op, key, arg in ops:
        if op == "insert":
            index.insert(key, arg)
            model[key] = arg
        elif op == "delete":
            assert index.delete(key) == (key in model)
            model.pop(key, None)
        elif op == "get":
            assert index.get(key) == model.get(key)
        else:  # scan
            ref_keys = sorted(model)
            i = bisect.bisect_left(ref_keys, key)
            expected = [(k, model[k]) for k in ref_keys[i : i + arg]]
            assert index.scan(key, arg) == expected
    assert len(index) == len(model)
    assert [k for k, _ in index.items()] == sorted(model)
    index.check_invariants()


@given(
    st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=500, unique=True)
)
@settings(max_examples=100, deadline=None)
def test_insert_then_full_scan_is_sorted(keys):
    index = DyTIS(_CFG)
    for k in keys:
        index.insert(k, k)
    assert [k for k, _ in index.items()] == sorted(keys)
    got = index.scan(0, len(keys))
    assert [k for k, _ in got] == sorted(keys)
    index.check_invariants()


@given(
    st.lists(st.integers(0, 2**16 - 1), min_size=10, max_size=300, unique=True),
    st.data(),
)
@settings(max_examples=100, deadline=None)
def test_delete_half_preserves_rest(keys, data):
    index = DyTIS(_CFG)
    for k in keys:
        index.insert(k, k * 3)
    victims = data.draw(st.lists(st.sampled_from(keys), unique=True))
    for v in victims:
        assert index.delete(v)
    remaining = sorted(set(keys) - set(victims))
    assert [k for k, _ in index.items()] == remaining
    for k in remaining:
        assert index.get(k) == k * 3
    index.check_invariants()
