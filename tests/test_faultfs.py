"""The fault-injection filesystem: page-cache model and crash points.

Everything the crash-consistency suite relies on is pinned here:
volatile-until-sync semantics, deterministic syscall numbering, the
three tail-settle modes, rename atomicity of ``write_atomic``, and the
reboot contract.
"""

import pytest

from repro.wal.faultfs import (
    FaultSpec,
    SimFS,
    SimulatedCrash,
    join,
    segment_files,
    segment_name,
    segment_seqno,
)


def test_appends_are_volatile_until_sync():
    fs = SimFS()
    h = fs.open_append("dir/f")
    h.append(b"hello")
    assert fs.read_bytes("dir/f") == b"hello"  # visible to readers...
    fs.reboot()  # ...but a power cut now loses it
    assert fs.read_bytes("dir/f") == b""

    h = fs.open_append("dir/f")
    h.append(b"hello")
    h.sync()
    fs.reboot()
    assert fs.read_bytes("dir/f") == b"hello"


def test_sync_covers_everything_appended_so_far():
    fs = SimFS()
    h = fs.open_append("f")
    h.append(b"a")
    h.append(b"b")
    h.sync()
    h.append(b"c")
    fs.reboot()
    assert fs.read_bytes("f") == b"ab"


def test_syscalls_are_counted_deterministically():
    def workload(fs):
        h = fs.open_append("f")  # 1
        h.append(b"x")  # 2
        h.sync()  # 3
        fs.write_atomic("g", b"y")  # 4, 5
        fs.remove("g")  # 6

    fs = SimFS()
    workload(fs)
    assert fs.syscalls == 6
    fs2 = SimFS()
    workload(fs2)
    assert fs2.syscalls == 6


def test_crash_fires_at_exact_syscall():
    fs = SimFS(FaultSpec(crash_at=2, tail_mode="drop"))
    h = fs.open_append("f")  # syscall 1
    with pytest.raises(SimulatedCrash):
        h.append(b"x")  # syscall 2 -> boom
    assert fs.crashed
    # A dead filesystem rejects further work until reboot.
    with pytest.raises(SimulatedCrash):
        fs.open_append("g")
    fs.reboot()
    assert fs.read_bytes("f") == b""


def test_tail_mode_drop_loses_unsynced_tail():
    fs = SimFS(FaultSpec(crash_at=4, tail_mode="drop"))
    h = fs.open_append("f")
    h.append(b"old")
    h.sync()
    with pytest.raises(SimulatedCrash):
        h.append(b"new-unsynced")  # the arming syscall itself
    fs.reboot()
    assert fs.read_bytes("f") == b"old"


def test_tail_mode_torn_keeps_a_prefix():
    fs = SimFS(FaultSpec(crash_at=3, tail_mode="torn", seed=7))
    h = fs.open_append("f")
    h.append(b"0123456789")
    with pytest.raises(SimulatedCrash):
        h.sync()
    fs.reboot()
    survived = fs.read_bytes("f")
    assert b"0123456789".startswith(survived)


def test_tail_mode_flip_corrupts_one_bit():
    fs = SimFS(FaultSpec(crash_at=3, tail_mode="flip", seed=7))
    h = fs.open_append("f")
    h.append(b"0123456789")
    with pytest.raises(SimulatedCrash):
        h.sync()
    fs.reboot()
    survived = fs.read_bytes("f")
    assert len(survived) == 10
    diffs = [i for i, (a, b) in enumerate(zip(survived, b"0123456789")) if a != b]
    assert len(diffs) == 1
    assert bin(survived[diffs[0]] ^ b"0123456789"[diffs[0]]).count("1") == 1


def test_fault_settlement_is_deterministic_per_seed():
    def run(seed):
        fs = SimFS(FaultSpec(crash_at=3, tail_mode="torn", seed=seed))
        h = fs.open_append("f")
        h.append(bytes(range(100)))
        with pytest.raises(SimulatedCrash):
            h.sync()
        return fs.reboot().read_bytes("f")

    assert run(1) == run(1)
    # Different seeds settle differently for a 100-byte tail (the odds
    # of collision are 1/101 per pair; these three are checked fixed).
    assert len({run(1), run(2), run(3)}) > 1


def test_write_atomic_is_all_or_nothing():
    fs = SimFS()
    fs.write_atomic("f", b"v1")
    # Crash on prepare (syscall 3) and on commit (syscall 4 in a fresh
    # numbering): both leave the old content.
    for crash_at in (3, 4):
        fs = SimFS()
        fs.write_atomic("f", b"v1")  # syscalls 1, 2
        with pytest.raises(SimulatedCrash):
            fs.fault = FaultSpec(crash_at=crash_at, tail_mode="drop")
            fs.write_atomic("f", b"v2")
        assert fs.reboot().read_bytes("f") == b"v1"
    fs = SimFS()
    fs.write_atomic("f", b"v1")
    fs.write_atomic("f", b"v2")
    assert fs.read_bytes("f") == b"v2"


def test_remove_is_one_syscall_and_crash_before_keeps_file():
    fs = SimFS()
    fs.write_atomic("f", b"v")
    fs.fault = FaultSpec(crash_at=3, tail_mode="drop")
    with pytest.raises(SimulatedCrash):
        fs.remove("f")
    assert fs.reboot().read_bytes("f") == b"v"
    fs.remove("f")
    with pytest.raises(FileNotFoundError):
        fs.read_bytes("f")


def test_listdir_sees_only_direct_children():
    fs = SimFS()
    fs.write_atomic("a/b", b"")
    fs.write_atomic("a/c/d", b"")
    fs.write_atomic("e", b"")
    assert fs.listdir("a") == ["b", "c"]


def test_segment_name_helpers():
    assert segment_name(7) == "wal-00000007.log"
    assert segment_seqno("wal-00000007.log") == 7
    with pytest.raises(ValueError):
        segment_seqno("not-a-segment.log")
    fs = SimFS()
    d = "wal"
    fs.makedirs(d)
    fs.write_atomic(join(d, segment_name(2)), b"")
    fs.write_atomic(join(d, segment_name(1)), b"")
    fs.write_atomic(join(d, "stray.txt"), b"")
    assert segment_files(fs, d) == ["wal-00000001.log", "wal-00000002.log"]
    assert segment_files(fs, "missing") == []


def test_fault_spec_rejects_unknown_tail_mode():
    with pytest.raises(ValueError):
        FaultSpec(crash_at=1, tail_mode="melt")
