"""Tests for the YCSB-style workload generator (repro.workloads)."""

import collections

import numpy as np
import pytest

from repro.workloads import (
    OpKind,
    Operation,
    UniformChooser,
    WORKLOADS,
    WorkloadSpec,
    ZipfianChooser,
    generate_operations,
    make_workload,
)


class TestZipfianChooser:
    def test_skewed_distribution(self):
        keys = np.arange(1000, dtype=np.uint64)
        chooser = ZipfianChooser(keys, theta=0.99, seed=0, scramble=False)
        picks = chooser.choose(20000)
        counts = collections.Counter(picks.tolist())
        # Rank-1 key (index 0 unscrambled) must dominate.
        assert counts[0] > 20000 * 0.05
        # And the tail must be much colder than the head.
        assert counts[0] > 20 * max(counts.get(900 + i, 0) for i in range(100))

    def test_scramble_spreads_hot_keys(self):
        keys = np.arange(1000, dtype=np.uint64)
        chooser = ZipfianChooser(keys, seed=0, scramble=True)
        picks = chooser.choose(20000)
        hot = collections.Counter(picks.tolist()).most_common(1)[0][0]
        # With scrambling, the hottest key is almost surely not key 0.
        assert hot != 0 or True  # scramble is hash-based; just ensure it runs
        assert len(set(picks.tolist())) > 100

    def test_only_population_keys(self):
        keys = np.array([5, 10, 20, 40], dtype=np.uint64)
        picks = ZipfianChooser(keys, seed=1).choose(500)
        assert set(picks.tolist()) <= {5, 10, 20, 40}

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            ZipfianChooser([], seed=0)

    def test_bad_theta_rejected(self):
        with pytest.raises(ValueError):
            ZipfianChooser([1, 2], theta=0.0)

    def test_deterministic(self):
        keys = np.arange(100, dtype=np.uint64)
        a = ZipfianChooser(keys, seed=7).choose(100)
        b = ZipfianChooser(keys, seed=7).choose(100)
        assert np.array_equal(a, b)


class TestUniformChooser:
    def test_roughly_uniform(self):
        keys = np.arange(100, dtype=np.uint64)
        picks = UniformChooser(keys, seed=0).choose(50000)
        counts = collections.Counter(picks.tolist())
        assert max(counts.values()) < 3 * min(counts.values())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UniformChooser([])


class TestWorkloadSpecs:
    def test_all_paper_workloads_present(self):
        # The paper's seven (D' replacing D) plus stock YCSB D as an extra.
        assert set(WORKLOADS) == {"Load", "A", "B", "C", "D", "D'", "E", "F"}
        assert WORKLOADS["D"].latest and not WORKLOADS["D'"].latest

    def test_mixes_sum_to_one(self):
        for spec in WORKLOADS.values():
            total = spec.read + spec.update + spec.insert + spec.scan + spec.rmw
            assert total == pytest.approx(1.0)

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", read=0.5)

    def test_make_workload_unknown(self):
        with pytest.raises(ValueError):
            make_workload("Z")

    def test_d_prime_reads_existing_keys(self):
        assert WORKLOADS["D'"].preload_fraction == 0.8
        assert WORKLOADS["E"].scan_length == 100


class TestGenerateOperations:
    def test_load_is_dataset_in_order(self):
        data = [5, 3, 9, 1]
        preload, ops = generate_operations(WORKLOADS["Load"], data, 4)
        assert preload == []
        assert [op.key for op in ops] == data
        assert all(op.kind is OpKind.INSERT for op in ops)

    def test_mix_proportions_roughly_respected(self):
        rng = np.random.default_rng(0)
        data = rng.choice(2**40, size=8000, replace=False)
        preload, ops = generate_operations(WORKLOADS["A"], data, 5000, seed=1)
        kinds = collections.Counter(op.kind for op in ops)
        assert kinds[OpKind.READ] == pytest.approx(2500, rel=0.15)
        assert kinds[OpKind.UPDATE] == pytest.approx(2500, rel=0.15)

    def test_insert_ops_preserve_dataset_order(self):
        rng = np.random.default_rng(1)
        data = rng.choice(2**40, size=4000, replace=False)
        _, ops = generate_operations(WORKLOADS["E"], data, 3000, seed=2)
        future = data[int(len(data) * 0.8):]
        inserted = [op.key for op in ops if op.kind is OpKind.INSERT]
        assert inserted == [int(k) for k in future[: len(inserted)]]

    def test_scan_ops_have_length(self):
        rng = np.random.default_rng(2)
        data = rng.choice(2**40, size=4000, replace=False)
        _, ops = generate_operations(WORKLOADS["E"], data, 1000, seed=3)
        scans = [op for op in ops if op.kind is OpKind.SCAN]
        assert scans and all(op.arg == 100 for op in scans)

    def test_read_keys_from_preload_population(self):
        rng = np.random.default_rng(3)
        data = rng.choice(2**40, size=4000, replace=False)
        preload, ops = generate_operations(WORKLOADS["C"], data, 2000, seed=4)
        population = set(preload)
        assert all(op.key in population for op in ops)

    def test_ops_capped_by_remaining_inserts(self):
        rng = np.random.default_rng(4)
        data = rng.choice(2**40, size=1000, replace=False)
        # 5% inserts of a 200-key future allows at most 4000 ops.
        _, ops = generate_operations(WORKLOADS["D'"], data, 10**6, seed=5)
        assert len(ops) <= 4000

    def test_uniform_distribution_option(self):
        rng = np.random.default_rng(5)
        data = rng.choice(2**40, size=2000, replace=False)
        _, ops = generate_operations(
            WORKLOADS["C"], data, 1000, seed=6, distribution="uniform"
        )
        assert len(ops) == 1000

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate_operations(WORKLOADS["C"], [1, 2, 3], 10, distribution="x")

    def test_non_load_requires_population(self):
        with pytest.raises(ValueError):
            generate_operations(WORKLOADS["C"], [], 10)
