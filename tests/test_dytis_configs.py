"""The full DyTIS operation cycle across a configuration matrix.

Bit-layout bugs hide in specific (key_bits, R, capacity, L_start)
combinations; this module runs the same roundtrip + scan + delete +
invariant cycle over a spread of layouts.
"""

import random

import pytest

from repro.core import DyTIS, DyTISConfig

CONFIGS = {
    "paper-shaped": DyTISConfig(
        key_bits=64, first_level_bits=9, bucket_capacity=128, l_start=6
    ),
    "scaled-default": DyTISConfig(
        key_bits=64, first_level_bits=4, bucket_capacity=64, l_start=2
    ),
    "tiny-buckets": DyTISConfig(
        key_bits=32, first_level_bits=4, bucket_capacity=4, l_start=1
    ),
    "wide-first-level": DyTISConfig(
        key_bits=32, first_level_bits=8, bucket_capacity=16, l_start=2
    ),
    "no-first-level": DyTISConfig(
        key_bits=32, first_level_bits=0, bucket_capacity=16, l_start=2
    ),
    "tight-caps": DyTISConfig(
        key_bits=32,
        first_level_bits=2,
        bucket_capacity=8,
        l_start=1,
        seg_limit_factor=1,
        seg_limit_boost=2,
    ),
    "coarse-pieces": DyTISConfig(
        key_bits=32, first_level_bits=2, bucket_capacity=8, l_start=1,
        max_piece_bits=2,
    ),
    "high-threshold": DyTISConfig(
        key_bits=32, first_level_bits=2, bucket_capacity=8, l_start=1,
        util_threshold=0.9,
    ),
}


def _keys_for(cfg: DyTISConfig, n: int, seed: int):
    rng = random.Random(seed)
    limit = 1 << cfg.key_bits
    if cfg.key_bits >= 62:  # random.sample cannot take a 2^64 range
        out = set()
        while len(out) < n:
            out.add(rng.randrange(limit))
        return list(out)
    return rng.sample(range(limit), n)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_full_cycle(name):
    cfg = CONFIGS[name]
    idx = DyTIS(cfg)
    keys = _keys_for(cfg, 4000, seed=hash(name) & 0xFFFF)

    for i, k in enumerate(keys):
        idx.insert(k, i)
    assert len(idx) == len(keys)
    idx.check_invariants()

    for i, k in enumerate(keys[::5]):
        assert idx.get(k) == i * 5

    ref = sorted(keys)
    start = ref[len(ref) // 3]
    got = idx.scan(start, 200)
    lo = ref.index(start)
    assert [k for k, _ in got] == ref[lo : lo + 200]

    victims = keys[::2]
    for k in victims:
        assert idx.delete(k)
    idx.check_invariants()
    survivors = sorted(set(keys) - set(victims))
    assert [k for k, _ in idx.items()] == survivors


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_sequential_cycle(name):
    """Sequential keys stress splits/doubling in every layout."""
    cfg = CONFIGS[name]
    idx = DyTIS(cfg)
    base = (1 << (cfg.key_bits - 1)) + 12345
    n = 3000
    for k in range(base, base + n):
        idx.insert(k, k)
    idx.check_invariants()
    assert [k for k, _ in idx.items()] == list(range(base, base + n))
    assert [k for k, _ in idx.scan(base + 100, 50)] == list(
        range(base + 100, base + 150)
    )
