"""Unit tests for the repro.shard subsystem.

Routing math, the shared-memory column lifecycle, the router's
clean/dirty column discipline, per-shard durability (crash a worker,
restart it, replay its WAL), metrics scrape, protocol conformance, and
worker reaping.
"""

import os

import numpy as np
import pytest

from repro.api.protocol import is_batch_index, is_index
from repro.core import DyTIS, DyTISConfig
from repro.shard import ShardedIndex, ShardError, ShardRouter
from repro.shard.metrics import (
    WorkerMetrics,
    dump_worker_metrics,
    load_worker_metrics,
    shards_to_prometheus,
)
from repro.shard.shm import AttachedColumn, publish_column, unlink_block

CFG = DyTISConfig(key_bits=32, first_level_bits=3, bucket_capacity=8, l_start=1)


# -- routing ---------------------------------------------------------------


def test_router_msb_partitions_key_space_contiguously():
    r = ShardRouter(4, key_bits=32)
    assert r.ordered
    width = 2**30
    for s in range(4):
        assert r.shard_of(s * width) == s
        assert r.shard_of((s + 1) * width - 1) == s


def test_router_msb_skip_bits_routes_below_prefix():
    # Keys share a constant top byte (the namespace id): skipping it
    # must still spread the payload across shards.
    r = ShardRouter(4, key_bits=64, skip_bits=8)
    prefix = 7 << 56
    payload_width = 2**54  # (64 - 8 - 2) bits per shard
    shards = {r.shard_of(prefix | (s * payload_width)) for s in range(4)}
    assert shards == {0, 1, 2, 3}


def test_router_hash_balances_dense_small_keys():
    r = ShardRouter(8, mode="hash")
    counts = np.bincount(r.route_array(np.arange(8000, dtype=np.uint64)),
                         minlength=8)
    assert counts.min() > 0.5 * counts.max()


def test_router_route_array_matches_scalar():
    for mode in ("msb", "hash"):
        r = ShardRouter(4, key_bits=32, mode=mode)
        keys = np.random.default_rng(0).integers(
            0, 2**32, size=500, dtype=np.uint64
        )
        vec = r.route_array(keys)
        assert [r.shard_of(int(k)) for k in keys] == vec.tolist()


def test_router_range_plan():
    r = ShardRouter(4, key_bits=32)
    width = 2**30
    assert r.range_plan(0, 10) == ([0], True)
    assert r.range_plan(width - 5, width + 5) == ([0, 1], True)
    assert r.range_plan(0, 4 * width) == ([0, 1, 2, 3], True)
    assert r.range_plan(5, 5) == ([], True)
    h = ShardRouter(4, key_bits=32, mode="hash")
    shards, ordered = h.range_plan(0, 10)
    assert shards == [0, 1, 2, 3] and not ordered


def test_router_rejects_bad_shapes():
    with pytest.raises(ValueError):
        ShardRouter(3)
    with pytest.raises(ValueError):
        ShardRouter(4, mode="modulo")
    with pytest.raises(ValueError):
        ShardRouter(4, key_bits=8, skip_bits=8)


# -- shared-memory columns -------------------------------------------------


def test_shm_column_round_trip():
    keys = np.array([3, 10, 99, 2**31], dtype=np.uint64)
    values = ["a", {"b": 1}, None, 4]
    block = publish_column(keys, values, generation=7)
    try:
        col = AttachedColumn(block.name)
        assert col.generation == 7
        assert col.n_keys == 4
        assert col.get(3) == "a"
        assert col.get(10) == {"b": 1}
        assert col.get(99) is None  # stored None, still a hit
        assert col.contains(99)
        assert not col.contains(98)
        assert col.get(2**31) == 4
        assert col.get(5) is None
        assert col.get_many([3, 5, 2**31]) == ["a", None, 4]
        col.close()
    finally:
        block.close()
        unlink_block(block)


def test_shm_column_empty():
    block = publish_column(np.empty(0, dtype=np.uint64), [], generation=0)
    try:
        col = AttachedColumn(block.name)
        assert col.get(1) is None
        assert col.get_many([1, 2]) == [None, None]
        col.close()
    finally:
        block.close()
        unlink_block(block)


def test_export_read_column_both_engines():
    for storage in ("lists", "columnar"):
        idx = DyTIS(DyTISConfig(key_bits=32, first_level_bits=3,
                                bucket_capacity=8, l_start=1,
                                storage=storage))
        kv = {k: k * 3 for k in range(0, 1000, 7)}
        idx.bulk_load(sorted(kv), [kv[k] for k in sorted(kv)])
        idx.delete(7)
        del kv[7]
        keys, values = idx.export_read_column()
        assert keys.dtype == np.uint64
        assert keys.tolist() == sorted(kv)
        assert values == [kv[k] for k in sorted(kv)]


def test_column_serving_stays_exact_across_mutations():
    """Reads after writes must reflect the writes (dirty fall-through),
    and republished columns must serve the updated data."""
    with ShardedIndex(2, config=CFG, mode="hash") as idx:
        keys = list(range(2000))
        idx.bulk_load(keys, keys)
        # bulk_load published columns; reads are now column hits.
        assert idx._columns[0] is not None and idx._dirty[0] == 0
        assert idx.get(123) == 123
        idx.insert(123, -1)
        assert idx.get(123) == -1  # dirty shard falls through, exact
        # Enough reads trigger a republish; data stays exact.
        for _ in range(300):
            assert idx.get(123) == -1
        s = idx.router.shard_of(123)
        assert idx._dirty[s] == 0  # republished along the way
        assert idx.get(123) == -1


# -- the sharded index ------------------------------------------------------


def test_sharded_index_satisfies_protocols():
    with ShardedIndex(2, config=CFG) as idx:
        assert is_index(idx)
        assert is_batch_index(idx)
        assert idx.config.key_bits == CFG.key_bits


def test_sharded_insert_many_pair_form():
    with ShardedIndex(2, config=CFG, mode="hash") as idx:
        idx.insert_many([(5, "a"), (6, "b")])
        assert idx.get_many([5, 6, 7]) == ["a", "b", None]


def test_sharded_scan_across_shards_ordered_mode():
    with ShardedIndex(4, config=CFG, skip_bits=1) as idx:
        keys = list(range(0, 2**31, 2**24))
        idx.bulk_load(keys, keys)
        got = idx.scan(keys[5] + 1, 40)
        assert got == [(k, k) for k in keys[6:46]]


def test_sharded_error_parity_with_local_index():
    """Bad keys raise the same ValueError a local DyTIS raises --
    scalar, batch, and read paths alike -- and a failing batch leaves
    the fleet usable (prior state intact, pipes in sync)."""
    with ShardedIndex(2, config=CFG) as idx:
        idx.insert(7, "ok")
        for bad in (
            lambda: idx.insert(-1, "nope"),
            lambda: idx.get(-1),
            lambda: -1 in idx,
            lambda: idx.insert_many([3, -1], ["a", "b"]),
            lambda: idx.get_many([3, 2**70]),
        ):
            with pytest.raises(ValueError, match="key"):
                bad()
        assert idx.get(7) == "ok"
        assert len(idx) == 1


def test_sharded_remote_error_keeps_original_type():
    """A worker-side application error crosses the pipe as its builtin
    type; only infrastructure failures surface as ShardError."""
    with ShardedIndex(2, config=CFG, mode="hash") as idx:
        # 2**33 survives the router's batch partition (it only rejects
        # non-uint64 values) but violates the workers' key_bits=32
        # config: the worker-side ValueError crosses the pipe intact.
        with pytest.raises(ValueError, match="outside"):
            idx.insert_many([2**33], ["v"])
        assert len(idx) == 0


def test_sharded_close_reaps_workers():
    idx = ShardedIndex(2, config=CFG)
    procs = list(idx._procs)
    assert all(p.is_alive() for p in procs)
    idx.close()
    assert all(not p.is_alive() for p in procs)
    idx.close()  # idempotent


def test_durable_shard_restart_replays_wal(tmp_path):
    d = str(tmp_path / "db")
    with ShardedIndex(
        2, config=CFG, mode="hash", durable_dir=d
    ) as idx:
        idx.insert_many(list(range(500)), [k * 2 for k in range(500)])
        idx.delete_range(100, 200)
        idx.checkpoint()
        idx.insert(1000, "post-ckpt")
        # Simulate a crash of one worker (no clean shutdown) and
        # restart it in place: it recovers checkpoint + WAL tail.
        idx._procs[0].kill()
        idx._procs[0].join()
        with pytest.raises(ShardError):
            for k in range(500):  # some key routes to the dead shard
                idx._call(0, "get", k)
        idx.restart_shard(0)
        assert len(idx) == 401
        assert idx.get(150) is None
        assert idx.get(50) == 100
        assert idx.get(1000) == "post-ckpt"
    # Cold restart from disk only.
    with ShardedIndex(
        2, config=CFG, mode="hash", durable_dir=d
    ) as idx:
        assert len(idx) == 401
        assert idx.get(50) == 100 and idx.get(1000) == "post-ckpt"


def test_shard_metrics_scrape_and_merge():
    with ShardedIndex(2, config=CFG, mode="hash") as idx:
        idx.insert_many(list(range(200)), list(range(200)))
        for k in range(0, 200, 7):
            idx._call(idx.router.shard_of(k), "get", k)
        per_shard = idx.shard_metrics()
        assert len(per_shard) == 2
        assert sum(m.counters["size"] for m in per_shard) == 200
        total_gets = sum(m.latency["get"].count for m in per_shard)
        assert total_gets == len(range(0, 200, 7))
        page = idx.metrics_to_prometheus()
        assert 'dytis_shard_ops_total{op="get",shard="0"}' in page
        assert 'dytis_shard_ops_total{op="get",shard="1"}' in page
        assert 'dytis_shard_keys{shard="1"}' in page
        assert "dytis_shard_op_latency_ns_count" in page


def test_worker_metrics_frame_round_trip():
    from repro.obs import Observability

    obs = Observability()
    obs.record("get", 123)
    obs.record("insert", 456)
    obs.probes.gets += 3
    blob = dump_worker_metrics(obs, {"size": 42, "wal_last_lsn": 9})
    wm = load_worker_metrics(blob)
    assert wm.latency["get"].count == 1
    assert wm.latency["insert"].count == 1
    assert wm.probes.gets == 3
    assert wm.counters == {"size": 42, "wal_last_lsn": 9}
    with pytest.raises(ValueError):
        load_worker_metrics(b"XXXX" + blob[4:])
    with pytest.raises(ValueError):
        load_worker_metrics(blob + b"\x00")


def test_shards_to_prometheus_merges_counts():
    a, b = WorkerMetrics(), WorkerMetrics()
    from repro.obs import LatencyHistogram

    ha = LatencyHistogram()
    ha.record(10)
    hb = LatencyHistogram()
    hb.record(20)
    hb.record(30)
    a.latency["get"] = ha
    b.latency["get"] = hb
    page = shards_to_prometheus([a, b])
    assert 'dytis_shard_ops_total{op="get",shard="0"} 1' in page
    assert 'dytis_shard_ops_total{op="get",shard="1"} 2' in page
    assert 'dytis_shard_op_latency_ns_count{op="get"} 3' in page
