"""Tests for the shared linear model (repro.learned.linear)."""

import pytest

from repro.learned import LinearModel


class TestFit:
    def test_exact_on_linear_data(self):
        keys = [10, 20, 30, 40]
        positions = [1.0, 2.0, 3.0, 4.0]
        m = LinearModel.fit(keys, positions)
        assert m.slope == pytest.approx(0.1)
        for k, p in zip(keys, positions):
            assert m.predict(k) == pytest.approx(p)

    def test_empty_and_single(self):
        assert LinearModel.fit([], []).predict(5) == 0.0
        m = LinearModel.fit([7], [3.0])
        assert m.predict(7) == 3.0
        assert m.slope == 0.0

    def test_degenerate_same_key(self):
        m = LinearModel.fit([5, 5, 5], [1, 2, 3])
        assert m.slope == 0.0
        assert m.predict(5) == pytest.approx(2.0)

    def test_large_keys_numerically_stable(self):
        base = 2**62
        keys = [base + i * 1000 for i in range(100)]
        m = LinearModel.fit(keys, list(range(100)))
        for i, k in enumerate(keys):
            assert m.predict(k) == pytest.approx(i, abs=0.01)

    def test_fit_cdf_spreads_evenly(self):
        keys = list(range(0, 1000, 10))
        m = LinearModel.fit_cdf(keys, 200)
        assert m.predict_clamped(0, 200) <= 3
        assert m.predict_clamped(990, 200) >= 195


class TestPredict:
    def test_clamping(self):
        m = LinearModel(slope=1.0, intercept=0.0)
        assert m.predict_clamped(-5, 10) == 0
        assert m.predict_clamped(50, 10) == 9
        assert m.predict_clamped(5, 10) == 5

    def test_inverse(self):
        m = LinearModel(slope=2.0, intercept=3.0)
        assert m.inverse(m.predict(21)) == pytest.approx(21)

    def test_inverse_flat_raises(self):
        with pytest.raises(ZeroDivisionError):
            LinearModel(0.0, 1.0).inverse(1.0)

    def test_scaled(self):
        m = LinearModel(slope=1.5, intercept=2.0).scaled(2.0)
        assert m.slope == 3.0
        assert m.intercept == 4.0
