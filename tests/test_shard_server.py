"""End-to-end: the network server on a multi-process ShardedIndex.

The server must not care that its store's index is a process fleet:
the same wire protocol, the same coalescing pipeline, the same
namespace codec -- with requests fanning out to shard workers under
the hood and the admin page growing per-shard series.  Mirrors the CI
sharded-smoke job in-process so it runs in the tier-1 suite.
"""

import urllib.request

import pytest

from repro.core import DyTISConfig
from repro.kvstore import KVStore
from repro.obs.exposition import parse_prometheus
from repro.server.client import RemoteIndex
from repro.server.loadgen import run_load
from repro.server.server import ServerConfig
from repro.server.testing import ServerThread
from repro.shard import ShardedIndex

CONFIG = ServerConfig(host="127.0.0.1", port=0, admin_port=0)


@pytest.fixture()
def sharded_server():
    index = ShardedIndex(2, config=DyTISConfig(), mode="hash")
    with ServerThread(KVStore(index=index), config=CONFIG) as srv:
        yield srv
    # ServerThread.stop() runs the graceful shutdown, which closes the
    # index and reaps the fleet; verify rather than assume.
    assert all(p is None for p in index._procs)


def test_sharded_server_basic_ops(sharded_server):
    srv = sharded_server
    with RemoteIndex(srv.host, srv.port) as idx:
        keys = list(range(500))
        idx.bulk_load(keys, [k * 3 for k in keys])
        assert idx.get(7) == 21
        assert idx.get_many([1, 2, 999]) == [3, 6, None]
        idx.insert(999, "x")
        assert idx.get(999) == "x"
        assert idx.scan(10, 5) == [(k, k * 3) for k in range(10, 15)]
        assert idx.delete_range(0, 100) == 100
        assert idx.count_range(0, 500) == 400


def test_sharded_server_namespaces_isolated(sharded_server):
    srv = sharded_server
    with RemoteIndex(srv.host, srv.port, "a") as a, RemoteIndex(
        srv.host, srv.port, "b"
    ) as b:
        a.insert(1, "from-a")
        b.insert(1, "from-b")
        assert a.get(1) == "from-a"
        assert b.get(1) == "from-b"


def test_sharded_server_load_and_scrape(sharded_server):
    srv = sharded_server
    report = srv.run(
        run_load(
            srv.host,
            srv.port,
            workload="B",
            n_conns=4,
            n_keys=2000,
            n_ops=3000,
            pipeline=32,
        )
    )
    assert report.n_errors == 0
    assert report.n_requests >= 3000
    text = (
        urllib.request.urlopen(
            f"http://{srv.host}:{srv.admin_port}/metrics", timeout=10
        )
        .read()
        .decode()
    )
    samples = parse_prometheus(text)
    # Server-level series still present...
    assert samples[("dytis_server_requests_total", (("op", "get"),))] > 0
    # ...and the index page contributes per-shard + merged series.
    shard_keys = [
        samples[("dytis_shard_keys", (("shard", str(s)),))] for s in (0, 1)
    ]
    assert sum(shard_keys) >= 2000
    assert all(n > 0 for n in shard_keys), shard_keys
    inserted = sum(
        samples[("dytis_shard_ops_total", (("op", "insert"), ("shard", str(s))))]
        for s in (0, 1)
    )
    assert inserted > 0
    merged = samples[("dytis_shard_op_latency_ns_count", (("op", "insert"),))]
    assert merged == inserted
