"""Tests for the dataset generators (repro.datasets)."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    GROUP1,
    dataset_stats,
    generate,
    lognormal,
    longitudes,
    longlat,
    map_like,
    review_like,
    shuffled,
    table1,
    taxi_like,
    uniform,
)
from repro.metrics import characterize

N = 12_000
WINDOW = 3_000


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_unique_and_sized(name):
    keys = generate(name, N, seed=0)
    assert keys.dtype == np.uint64
    assert len(keys) == N
    assert len(np.unique(keys)) == N


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_reproducible(name):
    a = generate(name, 2000, seed=3)
    b = generate(name, 2000, seed=3)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = generate("uniform", 2000, seed=1)
    b = generate("uniform", 2000, seed=2)
    assert not np.array_equal(a, b)


def test_unknown_name_raises():
    with pytest.raises(ValueError):
        generate("nope", 100)


def test_shuffled_preserves_multiset():
    keys = generate("TX", 5000, seed=0)
    s = shuffled(keys, seed=1)
    assert sorted(s) == sorted(keys)
    assert not np.array_equal(s, keys)


def test_shuffled_suffix_naming():
    plain = generate("TX", 3000, seed=0)
    shuf = generate("TX(s)", 3000, seed=0)
    assert sorted(shuf) == sorted(plain)


class TestFigure1Positions:
    """The generators must land in the paper's Figure 1 regions."""

    @pytest.fixture(scope="class")
    def chars(self):
        return {
            name: characterize(name, generate(name, N, seed=1), window=WINDOW)
            for name in ("MM", "RM", "TX", "uniform", "TX(s)", "RM(s)")
        }

    def test_uniform_baseline(self, chars):
        assert chars["uniform"].skewness == pytest.approx(1.0, abs=0.5)
        assert chars["uniform"].kdd < 0.2

    def test_map_low_skew_medium_kdd(self, chars):
        assert chars["MM"].skewness < chars["TX"].skewness
        assert chars["MM"].skewness < chars["RM"].skewness
        assert chars["uniform"].kdd < chars["MM"].kdd < chars["TX"].kdd

    def test_review_high_skew_low_kdd(self, chars):
        assert chars["RM"].skewness > chars["TX"].skewness
        assert chars["RM"].kdd < chars["MM"].kdd

    def test_taxi_high_kdd(self, chars):
        assert chars["TX"].kdd > 5 * chars["MM"].kdd

    def test_shuffling_collapses_kdd(self, chars):
        assert chars["TX(s)"].kdd < chars["TX"].kdd / 10
        assert chars["RM(s)"].kdd <= chars["RM"].kdd * 2  # already low


class TestIndividualGenerators:
    def test_map_like_keys_in_range(self):
        keys = map_like(2000, seed=0)
        assert keys.max() < 2**63

    def test_review_like_concatenated_structure(self):
        keys = review_like(2000, seed=0)
        # Item IDs occupy the top bits; only n_items distinct prefixes.
        prefixes = np.unique(keys >> np.uint64(39))
        assert len(prefixes) <= 4096

    def test_taxi_like_time_advances(self):
        keys = taxi_like(5000, seed=0)
        pickups = (keys >> np.uint64(33)).astype(np.int64)
        # Pickup timestamps trend upward over the stream.
        assert pickups[-100:].mean() > pickups[:100].mean()

    def test_lognormal_skewed_values(self):
        keys = lognormal(5000, seed=0)
        assert np.median(keys) < keys.astype(np.float64).mean()

    def test_longlat_longitudes_clustered(self):
        for gen in (longlat, longitudes):
            keys = gen(5000, seed=0)
            c = characterize("g", keys, window=2500)
            assert c.skewness > 2.0

    def test_uniform_spans_space(self):
        keys = uniform(5000, seed=0)
        assert keys.max() > 2**62


class TestStats:
    def test_dataset_stats_fields(self):
        keys = generate("RM", 4000, seed=0)
        s = dataset_stats("RM", keys, window=2000)
        assert s.n_keys == 4000
        assert s.dataset_bytes == 4000 * 16
        assert s.key_range_size == int(keys.max() - keys.min())
        assert s.paper_class == "HL"
        assert "RM" in s.row()

    def test_table1_covers_group1(self):
        rows = table1(n=3000, window=1500)
        assert [r.name for r in rows] == list(GROUP1)
