"""Tests for the PGM-like learned index (repro.learned.pgm)."""

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned import PGMIndex, StaticPGM


class TestStaticPGM:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            StaticPGM([3, 1], [1, 2])
        with pytest.raises(ValueError):
            StaticPGM([1, 1], [1, 2])

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            StaticPGM([1], [1], epsilon=0)

    def test_empty(self):
        s = StaticPGM([], [])
        assert len(s) == 0
        assert s.get(5) is None
        assert s.lower_bound(5) == 0

    def test_lookup_roundtrip(self, rng):
        keys = sorted(rng.sample(range(2**40), 10000))
        s = StaticPGM(keys, [k + 1 for k in keys])
        for k in keys[::13]:
            assert s.get(k) == k + 1
        assert s.get(keys[0] + 1 if keys[0] + 1 not in set(keys) else 0) in (
            None, 1,
        )

    def test_lower_bound_matches_bisect(self, rng):
        keys = sorted(rng.sample(range(2**40), 5000))
        s = StaticPGM(keys, keys)
        for _ in range(2000):
            q = rng.randrange(2**40)
            assert s.lower_bound(q) == bisect.bisect_left(keys, q)

    def test_clustered_keys_with_gaps(self, rng):
        """Huge key gaps exercise the extrapolation fallback."""
        keys = []
        for c in sorted(rng.sample(range(2**50), 8)):
            keys.extend(range(c, c + 500))
        keys = sorted(set(keys))
        s = StaticPGM(keys, keys, epsilon=8)
        for k in rng.sample(keys, 800):
            assert s.get(k) == k
        for _ in range(500):
            q = rng.randrange(2**50)
            assert s.lower_bound(q) == bisect.bisect_left(keys, q)

    def test_layers_built_for_large_inputs(self, rng):
        keys = sorted(rng.sample(range(2**40), 20000))
        s = StaticPGM(keys, keys)
        assert len(s.layers) >= 1
        assert s.segment_count() > 1


class TestPGMIndex:
    def test_validation(self):
        with pytest.raises(ValueError):
            PGMIndex(buffer_capacity=1)

    def test_empty(self):
        p = PGMIndex()
        assert len(p) == 0
        assert p.get(5) is None
        assert 5 not in p
        assert not p.delete(5)
        assert p.scan(0, 10) == []
        assert list(p.items()) == []

    def test_insert_get_update(self, rng):
        p = PGMIndex(buffer_capacity=32)
        keys = rng.sample(range(2**40), 4000)
        for k in keys:
            p.insert(k, k)
        assert len(p) == len(keys)
        assert p.merge_count > 0
        for k in keys[::7]:
            assert p.get(k) == k
        p.insert(keys[0], "u")
        assert p.get(keys[0]) == "u"
        assert len(p) == len(keys)

    def test_update_key_living_in_a_level(self, rng):
        p = PGMIndex(buffer_capacity=16)
        keys = rng.sample(range(2**40), 200)
        for k in keys:
            p.insert(k, "old")
        # keys[0] has certainly been merged into a level by now.
        p.insert(keys[0], "new")
        assert p.get(keys[0]) == "new"
        assert len(p) == len(keys)

    def test_scan_merges_levels_and_buffer(self, rng):
        p = PGMIndex(buffer_capacity=32)
        keys = rng.sample(range(2**40), 3000)
        for k in keys:
            p.insert(k, k)
        ref = sorted(keys)
        for start in (0, 500, 2900):
            assert [k for k, _ in p.scan(ref[start], 50)] == ref[start : start + 50]

    def test_delete_tombstones(self, rng):
        p = PGMIndex(buffer_capacity=32)
        keys = rng.sample(range(2**40), 2000)
        for k in keys:
            p.insert(k, k)
        for k in keys[:800]:
            assert p.delete(k)
        assert len(p) == 1200
        assert p.get(keys[0]) is None
        assert keys[0] not in p
        ref = sorted(keys[800:])
        assert [k for k, _ in p.items()] == ref
        # Deleted keys never appear in scans.
        got = [k for k, _ in p.scan(0, 5000)]
        assert set(got).isdisjoint(set(keys[:800]))

    def test_reinsert_after_delete(self, rng):
        p = PGMIndex(buffer_capacity=8)
        for k in range(100):
            p.insert(k, k)
        p.delete(50)
        p.insert(50, "back")
        assert p.get(50) == "back"
        assert len(p) == 100

    def test_bulk_load(self, rng):
        keys = rng.sample(range(2**40), 5000)
        p = PGMIndex()
        p.bulk_load(keys, [k * 3 for k in keys])
        assert len(p) == len(keys)
        for k in keys[::11]:
            assert p.get(k) == k * 3
        p.insert(max(keys) + 1, "new")
        assert len(p) == len(keys) + 1

    def test_levels_grow_geometrically(self, rng):
        p = PGMIndex(buffer_capacity=16)
        for k in rng.sample(range(2**40), 3000):
            p.insert(k, k)
        sizes = [s for s in p.level_sizes() if s]
        assert sizes  # some levels exist
        assert max(sizes) > min(sizes)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(0, 300),
        ),
        max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_pgm_matches_dict_model(ops):
    p = PGMIndex(buffer_capacity=8)
    model = {}
    for op, key in ops:
        if op == "insert":
            p.insert(key, key + 7)
            model[key] = key + 7
        elif op == "delete":
            assert p.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert p.get(key) == model.get(key)
    assert len(p) == len(model)
    assert [k for k, _ in p.items()] == sorted(model)
