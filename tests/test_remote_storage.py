"""The remote-storage contract, chaos wrapper, and retry policy.

Backends are exercised through one shared contract suite (the point of
a duck-typed interface is that the uploader cannot tell them apart),
including ``LocalFsStorage`` over :class:`SimFS` -- the configuration
the crash-point sweeps rely on.  ``FlakyStorage`` tests pin down the
properties the uploader depends on: determinism per seed, exact fault
placement via ``fail_at``, and torn puts that leave a partial object
*and* report failure.  ``RetryPolicy`` tests assert the retry/backoff
machinery without ever sleeping for real.
"""

import pytest

from repro.remote import (
    FlakyStorage,
    LocalFsStorage,
    MemStorage,
    PrefixedStorage,
    RemoteNotFound,
    RemoteStorageError,
    RemoteTimeout,
    RemoteTransientError,
    RemoteUnavailable,
    RetryPolicy,
)
from repro.remote.metrics import RemoteMetrics
from repro.wal import SimFS


def _backends(tmp_path):
    return [
        MemStorage(),
        LocalFsStorage(str(tmp_path / "remote")),
        LocalFsStorage("remote", fs=SimFS()),
        PrefixedStorage(MemStorage(), "shard-000"),
    ]


def test_backend_contract(tmp_path):
    for st in _backends(tmp_path):
        assert st.list() == []
        assert st.head("a") is None
        with pytest.raises(RemoteNotFound):
            st.get("a")
        st.put("a", b"alpha")
        st.put("dir/b", b"beta")
        st.put("dir/sub/c", b"gamma")
        assert st.get("a") == b"alpha"
        assert st.get("dir/sub/c") == b"gamma"
        assert st.head("dir/b") == 4
        assert st.list() == ["a", "dir/b", "dir/sub/c"]
        assert st.list("dir/") == ["dir/b", "dir/sub/c"]
        # Overwrite replaces wholesale.
        st.put("a", b"ALPHA2")
        assert st.get("a") == b"ALPHA2"
        # Idempotent delete: absent keys are a no-op.
        st.delete("a")
        st.delete("a")
        assert st.head("a") is None
        assert st.list() == ["dir/b", "dir/sub/c"]


def test_localfs_rejects_escaping_keys(tmp_path):
    st = LocalFsStorage(str(tmp_path / "remote"))
    for bad in ("", "/abs", "a/../b"):
        with pytest.raises(RemoteStorageError):
            st.put(bad, b"x")


def test_prefixed_storage_isolates_namespaces():
    inner = MemStorage()
    a = PrefixedStorage(inner, "shard-000")
    b = PrefixedStorage(inner, "shard-001")
    a.put("m.json", b"A")
    b.put("m.json", b"B")
    assert a.get("m.json") == b"A"
    assert a.list() == ["m.json"]
    assert sorted(inner.list()) == ["shard-000/m.json", "shard-001/m.json"]
    a.delete("m.json")
    assert b.get("m.json") == b"B"


def test_flaky_storage_is_deterministic_per_seed():
    def run(seed):
        st = FlakyStorage(MemStorage(), error_rate=0.3, seed=seed)
        outcomes = []
        for i in range(50):
            try:
                st.put(f"k{i}", b"v")
                outcomes.append("ok")
            except RemoteTransientError:
                outcomes.append("fail")
        return outcomes

    assert run(7) == run(7)
    assert run(7) != run(8)
    assert "fail" in run(7) and "ok" in run(7)


def test_flaky_fail_at_forces_exact_faults():
    st = FlakyStorage(MemStorage(), fail_at=(2,))
    st.put("a", b"1")
    with pytest.raises(RemoteTimeout):
        st.put("b", b"2")
    st.put("b", b"2")  # op 3: clean again
    assert st.get("b") == b"2"
    assert st.faults_injected == 1


def test_flaky_torn_put_leaves_partial_object_and_raises():
    inner = MemStorage()
    st = FlakyStorage(inner, fail_at=(1,), torn_rate=1.0, seed=3)
    with pytest.raises(RemoteTransientError):
        st.put("obj", b"x" * 100)
    # Failure was reported, but a prefix landed: the exact violation of
    # put atomicity the manifest checksums exist to catch.
    partial = inner._objects.get("obj")
    assert partial is not None and len(partial) < 100
    assert partial == b"x" * len(partial)
    # The retry overwrites the partial object completely.
    st.put("obj", b"x" * 100)
    assert inner.get("obj") == b"x" * 100


def test_flaky_heal_stops_faulting():
    st = FlakyStorage(MemStorage(), error_rate=1.0)
    with pytest.raises(RemoteUnavailable):
        st.put("a", b"1")
    st.heal()
    st.put("a", b"1")
    assert st.get("a") == b"1"


def test_flaky_latency_uses_injected_sleep():
    slept = []
    st = FlakyStorage(MemStorage(), latency=0.25, sleep=slept.append)
    st.put("a", b"1")
    st.get("a")
    assert slept == [0.25, 0.25]


# -- retry policy -----------------------------------------------------------


def test_retry_succeeds_after_transient_failures():
    st = FlakyStorage(MemStorage(), fail_at=(1, 2))
    m = RemoteMetrics()
    policy = RetryPolicy(max_attempts=5, sleep=lambda d: None)
    policy.call(st.put, "k", b"v", op="put k", metrics=m)
    assert st.get("k") == b"v"
    assert m.retries_total == 2
    assert m.timeouts_total == 2  # fail_at injects RemoteTimeout
    assert m.backoff_ns_total > 0


def test_retry_exhaustion_raises_last_error_with_op():
    st = FlakyStorage(MemStorage(), error_rate=1.0)
    policy = RetryPolicy(max_attempts=3, sleep=lambda d: None)
    m = RemoteMetrics()
    with pytest.raises(RemoteUnavailable, match=r"put k: giving up after 3"):
        policy.call(st.put, "k", b"v", op="put k", metrics=m)
    assert m.retries_total == 3


def test_retry_does_not_retry_not_found():
    st = MemStorage()
    calls = []

    def get(key):
        calls.append(key)
        return st.get(key)

    policy = RetryPolicy(max_attempts=5, sleep=lambda d: None)
    with pytest.raises(RemoteNotFound):
        policy.call(get, "absent", op="get absent")
    assert len(calls) == 1  # a missing key will not appear by retrying


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.0
    )
    delays = [policy.backoff(a) for a in range(6)]
    assert delays[:3] == [0.01, 0.02, 0.04]
    assert all(d == 0.05 for d in delays[3:])
    # Jitter stretches but never shrinks, and is deterministic per seed.
    j1 = [RetryPolicy(jitter=0.5, seed=1).backoff(a) for a in range(4)]
    j2 = [RetryPolicy(jitter=0.5, seed=1).backoff(a) for a in range(4)]
    assert j1 == j2
    assert all(j >= d for j, d in zip(j1, delays))


def test_retry_sleeps_the_backoff_schedule():
    st = FlakyStorage(MemStorage(), fail_at=(1, 2, 3))
    slept = []
    policy = RetryPolicy(max_attempts=5, jitter=0.0, sleep=slept.append)
    policy.call(st.put, "k", b"v", op="put")
    assert slept == [policy.base_delay, policy.base_delay * 2,
                     policy.base_delay * 4]
