#!/usr/bin/env python3
"""Head-to-head: DyTIS vs ALEX vs XIndex vs B+-tree on one dataset.

A miniature of the paper's Figure 8: pick a dataset and run the
YCSB-style Load / A / C / E workloads against every index through the
uniform benchmark adapters.

Run:  python examples/index_shootout.py [dataset] [n_keys]
      e.g. python examples/index_shootout.py TX 20000
"""

import sys

from repro.bench import make_adapter, run_ycsb
from repro.core import DyTISConfig
from repro.datasets import DATASET_NAMES, generate
from repro.workloads import make_workload

INDEXES = ("DyTIS", "ALEX-10", "ALEX-70", "XIndex", "B+-tree")
WORKLOADS = ("Load", "A", "C", "E")


def main():
    dataset = sys.argv[1] if len(sys.argv) > 1 else "TX"
    n_keys = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    if dataset not in DATASET_NAMES and not dataset.endswith("(s)"):
        raise SystemExit(f"unknown dataset {dataset!r}; pick from {DATASET_NAMES}")

    keys = generate(dataset, n_keys, seed=1)
    config = DyTISConfig(first_level_bits=4, bucket_capacity=64, l_start=2)
    print(f"dataset {dataset}, {n_keys:,} keys; throughput in K ops/s\n")
    header = f"{'workload':<10}" + "".join(f"{ix:>10}" for ix in INDEXES)
    print(header)
    print("-" * len(header))
    for wl in WORKLOADS:
        cells = []
        for ix in INDEXES:
            adapter = make_adapter(ix, config)
            result = run_ycsb(
                adapter, make_workload(wl), keys, n_keys // 2, seed=1
            )
            cells.append(result.ops_per_sec / 1e3)
        print(f"{wl:<10}" + "".join(f"{c:>10.1f}" for c in cells))
    print(
        "\nExpected shapes (paper §4.3): DyTIS far above ALEX on Load "
        "(no bulk-load stalls), above XIndex/ALEX on reads, and scans "
        "(E) working at all -- unlike a hash index."
    )


if __name__ == "__main__":
    main()
