#!/usr/bin/env python3
"""Is your dataset 'dynamic'?  Quantify it like the paper's Figure 1.

The paper defines two metrics (§2.1): *variance of skewness* (how many
linear models an error-bounded PLR needs per window of keys) and *key
distribution divergence* (KL divergence between consecutive windows).
This example scores several synthetic datasets and prints where each
lands -- and which index you should therefore expect to win.

Run:  python examples/characterize_dataset.py
"""

from repro.datasets import generate
from repro.metrics import characterize

DATASETS = [
    ("uniform", "Group 3: the easy case prior work evaluates on"),
    ("MM", "map ingest: broad regions, drifting insert locality"),
    ("RM", "product reviews: clustered IDs, stationary arrival"),
    ("TX", "taxi trips: timestamp keys, always-moving distribution"),
    ("TX(s)", "the same trips, shuffled -- drift erased"),
]

N_KEYS = 40_000
WINDOW = 8_000


def advice(skew: float, kdd: float) -> str:
    if skew < 2 and kdd < 0.5:
        return "static & simple: a bulk-loaded learned index is fine"
    if kdd >= 0.5:
        return "distribution drifts: avoid bulk loading; DyTIS-style local adaptation"
    return "heavy skew: expect remapping cost; DyTIS or B+-tree over one-model-per-node"


def main():
    print(f"{'dataset':<10} {'skewness':>9} {'KDD':>8}  guidance")
    print("-" * 78)
    for name, blurb in DATASETS:
        keys = generate(name, N_KEYS, seed=5)
        c = characterize(name, keys, window=WINDOW)
        print(f"{name:<10} {c.skewness:>9.2f} {c.kdd:>8.3f}  {blurb}")
        print(f"{'':<10} {'':<9} {'':<8}  -> {advice(c.skewness, c.kdd)}")
    print(
        "\nskewness = mean PLR models per "
        f"{WINDOW:,}-key window (uniform == 1.0)\n"
        "KDD = mean KL divergence of consecutive windows (stationary ~ 0)"
    )


if __name__ == "__main__":
    main()
