#!/usr/bin/env python3
"""Crash a writer with SIGKILL, then recover every acknowledged write.

`repro.wal.DurableKVStore` wraps the embedded store with a write-ahead
log: every mutation is logged (and, per the fsync policy, synced)
*before* it is applied, so a crash -- even `kill -9`, no atexit, no
flush -- loses nothing that was acknowledged. This example:

1. spawns a child process that inserts keys with `fsync='always'`,
   printing each acknowledged key;
2. SIGKILLs the child mid-stream;
3. reopens the directory in this process (opening *is* recovery:
   newest checkpoint + WAL tail replay);
4. verifies every key the child acknowledged is present;
5. takes a checkpoint and shows the log truncating behind it.

Run:  python examples/durable_store.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.wal import DurableKVStore
from repro.wal.faultfs import OsFS, segment_files

# The writer child: acknowledge keys on stdout until killed.
WRITER = """
import sys
from repro.wal import DurableKVStore

store = DurableKVStore(sys.argv[1], fsync="always", segment_size=1 << 14)
ns = store.namespace("events")
for i in range(100_000):
    ns.insert(i, {"seq": i})
    print(i, flush=True)  # acknowledged: the record is fsync-durable
"""


def crash_a_writer(dbdir):
    child = subprocess.Popen(
        [sys.executable, "-c", WRITER, dbdir],
        stdout=subprocess.PIPE,
        text=True,
    )
    acked = []
    for line in child.stdout:
        acked.append(int(line))
        if len(acked) >= 500:  # let it get going, then pull the plug
            break
    os.kill(child.pid, signal.SIGKILL)
    child.wait()
    child.stdout.close()
    print(f"writer SIGKILLed after acknowledging {len(acked)} inserts "
          f"(last key {acked[-1]})")
    return acked


def main():
    with tempfile.TemporaryDirectory(prefix="durable_store_") as dbdir:
        acked = crash_a_writer(dbdir)

        t0 = time.perf_counter()
        store = DurableKVStore(dbdir)  # opening the directory IS recovery
        ms = (time.perf_counter() - t0) * 1e3
        events = store.namespace("events")

        missing = [k for k in acked if events.get(k) is None]
        print(f"recovered in {ms:.1f} ms: {len(events)} records, "
              f"replayed {store.metrics.records_replayed_total} WAL records")
        assert not missing, f"acknowledged writes lost: {missing[:5]}"
        # fsync='always' may persist at most the one in-flight insert
        # beyond the last acknowledged key, never fewer.
        assert len(events) >= len(acked)
        print("every acknowledged write survived the crash")

        # Checkpointing bounds future recovery time: snapshot, then
        # truncate the segments the snapshot made dead.
        fs = OsFS()
        before = len(segment_files(fs, dbdir))
        lsn = store.checkpoint()
        after = len(segment_files(fs, dbdir))
        print(f"checkpoint at LSN {lsn}: {before} WAL segments -> {after}")

        events.insert(10**6, {"seq": "post-checkpoint"})
        store.close()

        reopened = DurableKVStore(dbdir)
        print(f"reopen after checkpoint replays only the tail: "
              f"{reopened.metrics.records_replayed_total} records")
        assert reopened.namespace("events").get(10**6) is not None
        reopened.close()


if __name__ == "__main__":
    main()
