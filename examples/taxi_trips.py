#!/usr/bin/env python3
"""Time-series ingest: taxi-trip keys with a continuously shifting distribution.

The paper's motivating scenario (§2.1): trip records arrive in
timestamp order, so the key distribution drifts continuously -- exactly
the case where bulk-loaded learned indexes degrade.  This example
streams a synthetic NYC-taxi-style workload into DyTIS and serves the
two query patterns a trip store needs:

- point lookups of individual trips, and
- time-window scans ("all trips starting in this slice"),

then contrasts ingest throughput with an ALEX-style learned index that
was bulk loaded on the first 70% of the stream.

Run:  python examples/taxi_trips.py
"""

import time

from repro.core import DyTIS, DyTISConfig
from repro.datasets import taxi_like
from repro.learned import AlexIndex

N_TRIPS = 60_000


def ingest_dytis(keys):
    index = DyTIS(DyTISConfig(first_level_bits=4, bucket_capacity=64, l_start=2))
    t0 = time.perf_counter()
    for k in keys:
        index.insert(int(k), ("trip", int(k) & 0xFFFF))
    return index, time.perf_counter() - t0


def ingest_alex(keys):
    index = AlexIndex()
    split = int(len(keys) * 0.7)
    index.bulk_load([int(k) for k in keys[:split]],
                    [("trip", int(k) & 0xFFFF) for k in keys[:split]])
    t0 = time.perf_counter()
    for k in keys[split:]:
        index.insert(int(k), ("trip", int(k) & 0xFFFF))
    return index, time.perf_counter() - t0


def main():
    keys = taxi_like(N_TRIPS, seed=11)
    print(f"streaming {N_TRIPS:,} trips (timestamp-ordered keys)...")

    dytis, dytis_secs = ingest_dytis(keys)
    alex, alex_secs = ingest_alex(keys)
    print(f"DyTIS ingest (all trips, no bulk load): "
          f"{N_TRIPS / dytis_secs:,.0f} trips/s")
    print(f"ALEX-70 ingest (post-bulk-load tail):   "
          f"{(N_TRIPS * 0.3) / alex_secs:,.0f} trips/s")

    # Time-window analytics: scan 500 consecutive trips starting from a
    # pickup-time boundary (keys are ordered by pickup timestamp).
    window_start = int(sorted(keys)[N_TRIPS // 2])
    t0 = time.perf_counter()
    window = dytis.scan(window_start, 500)
    scan_ms = (time.perf_counter() - t0) * 1e3
    first, last = window[0][0], window[-1][0]
    print(f"\nscan of 500 trips from mid-stream took {scan_ms:.2f} ms")
    print(f"  pickup-ordered window spans keys {first} .. {last}")

    # Point lookups still behave like a hash table.
    t0 = time.perf_counter()
    for k in keys[::100]:
        assert dytis.get(int(k)) is not None
    lookup_us = (time.perf_counter() - t0) / (N_TRIPS / 100) * 1e6
    print(f"point lookups: {lookup_us:.1f} µs each")

    s = dytis.stats
    print(
        f"\nhow DyTIS followed the drifting distribution: "
        f"{s.remappings} remappings, {s.expansions} expansions, "
        f"{s.splits} splits ({s.keys_moved:,} keys moved total)"
    )


if __name__ == "__main__":
    main()
