#!/usr/bin/env python3
"""Product-review store: highly skewed composite keys.

Review keys concatenate (item ID | user ID | time) as in the paper's
Amazon datasets, producing a key space of dense clusters separated by
huge gaps -- the high-variance-of-skewness regime that breaks
one-model-per-node learned indexes.  Because DyTIS keys stay in natural
order, *all reviews of one item* are a single range scan over the item's
key prefix.

Run:  python examples/review_store.py
"""

import random
import time

from repro.core import DyTIS, DyTISConfig

ITEM_BITS = 25  # key = item_id << 39 | user_id << 16 | seq
USER_SHIFT = 16
ITEM_SHIFT = 39


def review_key(item_id: int, user_id: int, seq: int) -> int:
    return (item_id << ITEM_SHIFT) | (user_id << USER_SHIFT) | seq


def main():
    rng = random.Random(3)
    index = DyTIS(DyTISConfig(first_level_bits=4, bucket_capacity=64, l_start=2))

    # Zipf-ish popularity: a few blockbuster items, a long tail.
    items = rng.sample(range(1 << ITEM_BITS), 2000)
    weights = [1.0 / (r + 1) ** 1.2 for r in range(len(items))]

    print("ingesting 80,000 reviews (skewed item popularity)...")
    t0 = time.perf_counter()
    n = 0
    seq_per_item = {}
    while n < 80_000:
        item = rng.choices(items, weights)[0]
        user = rng.randrange(1 << 23)
        seq = seq_per_item.get(item, 0)
        seq_per_item[item] = seq + 1
        index.insert(review_key(item, user, seq & 0xFFFF),
                     {"item": item, "user": user, "stars": rng.randint(1, 5)})
        n += 1
    print(f"  {n / (time.perf_counter() - t0):,.0f} reviews/s, "
          f"{index.segment_count()} segments, "
          f"load factor {index.load_factor():.2f}")

    # 'All reviews for item X' = prefix range scan from item_id << 39.
    hot_item = items[0]
    expected = seq_per_item.get(hot_item, 0)
    t0 = time.perf_counter()
    out = []
    cursor = hot_item << ITEM_SHIFT
    end = (hot_item + 1) << ITEM_SHIFT
    while True:
        batch = index.scan(cursor, 256)
        in_range = [(k, v) for k, v in batch if k < end]
        out.extend(in_range)
        if len(in_range) < len(batch) or not batch:
            break
        cursor = batch[-1][0] + 1
    ms = (time.perf_counter() - t0) * 1e3
    stars = [v["stars"] for _, v in out]
    print(f"\nitem {hot_item}: {len(out)} reviews via prefix scan "
          f"in {ms:.2f} ms (expected {expected})")
    assert len(out) == expected
    if stars:
        print(f"  average rating {sum(stars) / len(stars):.2f}")

    # Update a review in place; the store never duplicates keys.
    k0 = out[0][0]
    record = dict(index.get(k0))
    record["stars"] = 1
    index.insert(k0, record)
    print(f"  updated review {k0}: now {index.get(k0)['stars']} star(s)")

    s = index.stats
    print(
        f"\nskew handling: {s.remappings} remappings vs {s.expansions} "
        f"expansions -- remapping dominates on skewed keys (paper §4.3)"
    )


if __name__ == "__main__":
    main()
