#!/usr/bin/env python3
"""A memcached-style shared cache on ConcurrentDyTIS (paper §3.4).

Multiple worker threads hammer one index with a mixed
read/insert/update/scan workload.  The two-level locking scheme (EH
reader/writer locks + per-segment mutexes) keeps every operation safe;
a final verification pass checks that nothing was lost or corrupted.

Run:  python examples/concurrent_cache.py
"""

import random
import threading
import time

from repro.core import ConcurrentDyTIS, DyTISConfig

N_THREADS = 4
OPS_PER_THREAD = 15_000


def worker(cache, seed, written):
    rng = random.Random(seed)
    local = {}
    for i in range(OPS_PER_THREAD):
        roll = rng.random()
        if roll < 0.5:  # insert/update
            key = rng.randrange(10**12)
            cache.insert(key, (seed, i))
            local[key] = (seed, i)
        elif roll < 0.9:  # read something this thread wrote
            if local:
                key = rng.choice(list(local))
                value = cache.get(key)
                # Another thread may have overwritten a colliding key,
                # but a value must never be torn or missing.
                assert value is not None
        else:  # short ordered scan
            start = rng.randrange(10**12)
            out = cache.scan(start, 16)
            keys = [k for k, _ in out]
            assert keys == sorted(keys), "scan broke key order"
    written.update(local)


def main():
    cache = ConcurrentDyTIS(
        DyTISConfig(first_level_bits=4, bucket_capacity=64, l_start=2)
    )
    written = {}
    threads = [
        threading.Thread(target=worker, args=(cache, seed, written))
        for seed in range(N_THREADS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    secs = time.perf_counter() - t0
    total_ops = N_THREADS * OPS_PER_THREAD
    print(f"{N_THREADS} threads, {total_ops:,} mixed ops in {secs:.2f}s "
          f"({total_ops / secs:,.0f} ops/s)")
    print(f"cache holds {len(cache):,} keys")
    print(f"time spent escalated to EH write locks: "
          f"{cache.structural_lock_time:.3f}s")

    # Full verification: internal invariants plus a sample of lookups.
    cache.check_invariants()
    sample = random.Random(0).sample(list(written), 2000)
    for key in sample:
        assert cache.get(key) is not None
    print("post-run invariant check and 2,000-key sample: OK")


if __name__ == "__main__":
    main()
