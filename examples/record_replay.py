#!/usr/bin/env python3
"""Record a workload trace, replay it against two indexes, diff the outcome.

Traces make benchmark results portable and regressions reproducible:
generate once, serialize to JSONL, replay anywhere.  Here we record a
YCSB-E-style trace over taxi keys, replay it against DyTIS and the
B+-tree, and verify both engines end in the same state.

Run:  python examples/record_replay.py
"""

import tempfile
import time
from pathlib import Path

from repro.bench import make_adapter, run_operations
from repro.core import DyTISConfig
from repro.datasets import generate
from repro.workloads import WORKLOADS, generate_operations, load_trace, save_trace

CFG = DyTISConfig(first_level_bits=4, bucket_capacity=64, l_start=2)


def replay(trace_path: Path, index_name: str):
    preload, ops = load_trace(trace_path)
    adapter = make_adapter(index_name, CFG)
    for k in preload:
        adapter.insert(k, k)
    result = run_operations(adapter, ops, "replay")
    return adapter, result


def main():
    keys = generate("TX", 30_000, seed=9)
    preload, ops = generate_operations(WORKLOADS["E"], keys, 10_000, seed=9)
    trace_path = Path(tempfile.gettempdir()) / "dytis_trace_e.jsonl"
    save_trace(trace_path, preload, ops)
    size_kb = trace_path.stat().st_size / 1024
    print(f"recorded {len(ops):,} ops (+{len(preload):,} preload keys) "
          f"to {trace_path} ({size_kb:,.0f} KiB)")

    engines = {}
    for name in ("DyTIS", "B+-tree"):
        t0 = time.perf_counter()
        adapter, result = replay(trace_path, name)
        engines[name] = adapter
        print(f"{name:<8} replay: {result.ops_per_sec:>10,.0f} ops/s "
              f"({time.perf_counter() - t0:.2f}s total)")

    a, b = engines["DyTIS"], engines["B+-tree"]
    assert len(a) == len(b)
    assert list(a.index.items()) == list(b.index.items())
    print(f"\nfinal states identical: {len(a):,} keys in both engines")


if __name__ == "__main__":
    main()
