#!/usr/bin/env python3
"""An embedded multi-table store on one DyTIS index.

The paper motivates DyTIS with in-memory data management systems (§1);
`repro.kvstore` is that layer: namespaces share a single ordered index
through key prefixes, and order-preserving codecs let string and
composite application keys keep their range-scan semantics.

Run:  python examples/embedded_store.py
"""

from repro.core import DyTISConfig
from repro.kvstore import CompositeCodec, KVStore, StringCodec, UintCodec


def main():
    store = KVStore(
        DyTISConfig(key_bits=48, first_level_bits=4, bucket_capacity=32,
                    l_start=2)
    )

    # Table 1: users keyed by id.
    users = store.namespace("users", codec=UintCodec(32))
    for uid, name in enumerate(["ada", "grace", "edsger", "barbara"]):
        users.insert(uid, {"name": name})

    # Table 2: sessions keyed by token string, scannable by prefix.
    sessions = store.namespace("sessions", codec=StringCodec(max_length=5))
    for token in ("aa1", "aa2", "ab9", "zz3"):
        sessions.insert(token, {"token": token, "ttl": 3600})

    # Table 3: reviews keyed by (item, user) -- the paper's composite keys.
    reviews = store.namespace(
        "reviews", codec=CompositeCodec(UintCodec(16), UintCodec(16))
    )
    for item in (7, 9):
        for uid in range(4):
            reviews.insert((item, uid), {"stars": (item + uid) % 5 + 1})

    print(f"one index, {len(store.namespaces())} tables, "
          f"{len(store)} total records\n")

    print("point lookups across tables:")
    print("  users[2]        ->", users.get(2))
    print("  sessions['ab9'] ->", sessions.get("ab9"))
    print("  reviews[(9,1)]  ->", reviews.get((9, 1)))

    print("\nordered scans stay per-table:")
    print("  sessions starting at 'aa':",
          [k for k, _ in sessions.scan("aa1", 10)])
    print("  all reviews of item 7:   ",
          [k for k, _ in reviews.scan((7, 0), 4)])

    users.delete(0)
    print(f"\nafter deleting user 0: users has {len(users)} rows, "
          f"store total {len(store)}")

    print("\nunderlying index stats:",
          f"{store.index.segment_count()} segments,",
          f"load factor {store.index.load_factor():.2f}")


if __name__ == "__main__":
    main()
