#!/usr/bin/env python3
"""Quickstart: the DyTIS public API in two minutes.

DyTIS is a hash-style index that nevertheless keeps keys in natural
order, so it serves point lookups, inserts, updates, deletes, AND range
scans from one structure -- no bulk loading or training phase required.

Run:  python examples/quickstart.py
"""

import random

from repro.core import DyTIS, DyTISConfig


def main():
    # The default config is the paper's (64-bit keys, R=9, 2KB buckets).
    # For a small demo we shrink the first level and buckets.
    index = DyTIS(DyTISConfig(first_level_bits=4, bucket_capacity=32, l_start=2))

    # Insert: no training phase -- the index learns the key distribution
    # incrementally as keys arrive.
    rng = random.Random(7)
    keys = rng.sample(range(10**12), 100_000)
    for k in keys:
        index.insert(k, f"value-{k}")
    print(f"inserted {len(index):,} keys")

    # Point lookup.
    probe = keys[1234]
    print(f"get({probe}) -> {index.get(probe)}")
    print(f"get(missing) -> {index.get(5)}")

    # In-place update (same key, new value; size unchanged).
    index.insert(probe, "updated!")
    print(f"after update: {index.get(probe)}")

    # Range scan: 10 smallest keys >= probe, in sorted order -- the
    # operation classic hash tables cannot do.
    for k, v in index.scan(probe, 10):
        print(f"  scan hit {k} -> {v}")

    # Delete.
    index.delete(probe)
    print(f"after delete: {index.get(probe)}")

    # The index reports how it adapted to the distribution.
    s = index.stats
    print(
        f"\nstructure ops: {s.splits} splits, {s.expansions} expansions, "
        f"{s.remappings} remappings, {s.doublings} directory doublings"
    )
    print(
        f"segments: {index.segment_count()}, load factor: "
        f"{index.load_factor():.2f}, linear models: {index.model_count()}"
    )


if __name__ == "__main__":
    main()
