"""Figure 1: dynamic characteristics of all dataset groups.

Regenerates the paper's (variance of skewness, KDD) scatter as a table.
Shape checks: shuffling collapses KDD (Group 2 vs Group 1); TX has the
highest KDD; RM/RL the highest skewness; Uniform sits at (1, ~0).
"""

from repro.bench.experiments import fig1_characteristics


def test_fig1_characteristics(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        fig1_characteristics.run, args=(bench_scale,), rounds=1, iterations=1
    )
    record_table("fig1_characteristics", fig1_characteristics.format_table(rows))
    by_name = {r.dataset: r for r in rows}
    # Paper shape assertions.
    assert by_name["uniform"].skewness < by_name["MM"].skewness + 1.5
    assert by_name["RM"].skewness > by_name["MM"].skewness
    assert by_name["TX"].kdd == max(r.kdd for r in rows)
    assert by_name["TX(s)"].kdd < by_name["TX"].kdd / 5
