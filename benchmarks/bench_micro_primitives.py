"""Microbenchmarks for the hot-path primitives.

Not a paper figure: these isolate the per-operation building blocks
(bucket search/insert, remap routing, planner, gapped-array ops, hash
mixing) so a performance regression can be pinned to one primitive
rather than rediscovered through Figure 8.
"""

import random

import numpy as np
import pytest

from repro.core import Bucket, PiecewiseRemap
from repro.core.segment import Segment, plan_remap
from repro.hashing import pseudo_key
from repro.learned import GappedArray, LinearModel


@pytest.fixture
def filled_bucket():
    b = Bucket(128)
    for k in range(0, 128 * 4, 8):  # half full
        b.insert(k, k)
    return b


def test_bucket_find(benchmark, filled_bucket):
    keys = [random.Random(0).randrange(0, 512) for _ in range(256)]

    def target():
        find = filled_bucket.find
        for k in keys:
            find(k)

    benchmark(target)


def test_bucket_sorted_insert(benchmark):
    def target():
        b = Bucket(128)
        for k in random.Random(1).sample(range(10**6), 128):
            b.insert(k, k)
        return b

    benchmark(target)


def test_remap_bucket_of_scalar(benchmark):
    remap = PiecewiseRemap(20, [1, 4, 1, 2])
    keys = random.Random(2).sample(range(1 << 20), 512)

    def target():
        bucket_of = remap.bucket_of
        for k in keys:
            bucket_of(k)

    benchmark(target)


def test_remap_bucket_indices_vectorised(benchmark):
    remap = PiecewiseRemap(20, [1, 4, 1, 2])
    keys = np.random.default_rng(3).integers(0, 1 << 20, size=4096, dtype=np.uint64)
    benchmark(lambda: remap.bucket_indices(keys))


def test_plan_remap_planner(benchmark):
    seg = Segment(4, PiecewiseRemap(20, [8]), 64)
    rng = random.Random(4)
    keys = sorted(rng.sample(range(1 << 15), 400))  # clustered low
    for k in keys:
        seg.insert(k, k)

    def target():
        return plan_remap(seg, insert_key=keys[0] + 1, cap=64,
                          util_threshold=0.6, max_piece_bits=10)

    plan = benchmark(target)
    assert plan is not None


def test_segment_build(benchmark):
    remap = PiecewiseRemap(20, [16])
    keys = sorted(random.Random(5).sample(range(1 << 20), 512))

    def target():
        return Segment.build(4, remap, 64, keys, keys)

    benchmark(target)


def test_pseudo_key_mixing(benchmark):
    keys = random.Random(6).sample(range(2**62), 512)

    def target():
        for k in keys:
            pseudo_key(k)

    benchmark(target)


def test_gapped_array_insert(benchmark):
    keys = random.Random(7).sample(range(10**9), 256)

    def target():
        ga = GappedArray(512)
        for k in keys:
            ga.insert(k, k)
        return ga

    benchmark(target)


def test_linear_model_fit(benchmark):
    keys = sorted(random.Random(8).sample(range(2**40), 1024))
    benchmark(lambda: LinearModel.fit_cdf(keys, 2048))
