"""§3.4 ablation: cost of the two-level locking protocol.

Shape: the unlocked single-threaded engine is at least as fast as the
locked engine on every operation (the reason the paper offers both).
"""

from repro.bench.experiments import lock_overhead


def test_lock_overhead(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        lock_overhead.run, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_table("lock_overhead", lock_overhead.format_table(rows))
    cell = {(r.dataset, r.engine): r for r in rows}
    for ds in ("MM", "TX"):
        plain = cell[(ds, "DyTIS")]
        locked = cell[(ds, "DyTIS-MT")]
        # Locks cannot make a single-threaded run faster (noise margin).
        assert plain.search_mops > 0.7 * locked.search_mops
        assert plain.insert_mops > 0.7 * locked.insert_mops
