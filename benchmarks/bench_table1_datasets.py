"""Table 1: dataset statistics for the Group-1 stand-ins."""

from repro.bench.experiments import table1_datasets


def test_table1_datasets(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        table1_datasets.run, args=(bench_scale,), rounds=1, iterations=1
    )
    record_table("table1_datasets", table1_datasets.format_table(rows))
    assert [r.name for r in rows] == ["MM", "ML", "RM", "RL", "TX"]
    by_name = {r.name: r for r in rows}
    # Skewness/KDD classes must match the paper's Table 1 ordering.
    assert by_name["RM"].skewness > by_name["TX"].skewness > by_name["MM"].skewness
    assert by_name["TX"].kdd > by_name["MM"].kdd > by_name["RM"].kdd
