"""Scan-length ablation (extension of workload E's fixed range 100).

Shapes: per-item scan cost falls as ranges grow for the ordered
structures; XIndex's merge-on-scan keeps it far behind at every length
(consistent with its Figure 8 E column).
"""

from repro.bench.experiments import scan_sweep


def test_scan_sweep(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        scan_sweep.run, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_table("scan_sweep", scan_sweep.format_table(rows))
    cell = {(r.index, r.scan_length): r for r in rows}
    # Longer scans amortize positioning: items/s at 1000 beats items/s at 10.
    for ix in ("DyTIS", "B+-tree"):
        assert cell[(ix, 1000)].items_per_sec > cell[(ix, 10)].items_per_sec
    # XIndex trails DyTIS at every length (merge-on-scan).
    for length in (10, 100, 1000):
        assert (
            cell[("DyTIS", length)].items_per_sec
            > cell[("XIndex", length)].items_per_sec
        )
