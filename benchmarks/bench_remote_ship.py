"""Remote shipping benchmark: write overhead, upload rate, attach time.

Acceptance bar from the remote-shipping issue: inline checkpoint/segment
shipping to a filesystem-backed remote stays within a small factor of
the local-only ``batch`` write path (seals ship off the commit path, so
the factor should be far from the retry-storm worst case), and a wiped
replica attaches from every shipped checkpoint size.  Upload MB and
attach latency are reported as the price curve.
"""

import os

from repro.bench.experiments import remote_ship


def test_remote_ship(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        remote_ship.run,
        kwargs=dict(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    record_table("remote_ship", remote_ship.format_table(rows))
    by_label = {r.label: r for r in rows}
    assert set(by_label) == {
        "local-only", "ship/inline", "attach/small", "attach/half",
        "attach/full",
    }
    # Every attach row restored a non-trivial store and shipped bytes.
    for label in ("attach/small", "attach/half", "attach/full"):
        row = by_label[label]
        assert row.shipped_mb > 0
        assert row.attach_s > 0
    # Bigger checkpoints ship more bytes.
    assert (
        by_label["attach/small"].shipped_mb
        < by_label["attach/full"].shipped_mb
    )
    # The headline bound only holds where timings are stable.
    if int(os.environ.get("REPRO_BENCH_N", "8000")) >= 8000:
        assert by_label["ship/inline"].overhead_x < 3.0, (
            f"inline shipping costs "
            f"{by_label['ship/inline'].overhead_x:.2f}x (bound: 3x)"
        )
