"""Figure 8: YCSB-style throughput across datasets × indexes.

Per-cell pytest benchmarks for the Load and C workloads on each dataset
(the paper's headline comparisons), plus a report benchmark regenerating
the full figure table.  ``REPRO_BENCH_FULL=1`` widens the matrix to all
five datasets and all seven workloads.
"""

import pytest

from conftest import full_matrix
from repro.bench.adapters import make_adapter
from repro.bench.experiments import fig8_ycsb
from repro.bench.harness import run_ycsb
from repro.datasets import generate
from repro.workloads import make_workload

INDEXES = ("DyTIS", "ALEX-10", "ALEX-70", "XIndex", "B+-tree")
DATASETS = ("MM", "ML", "RM", "RL", "TX") if full_matrix() else ("MM", "RM", "TX")
WORKLOADS = (
    ("Load", "A", "B", "C", "D'", "E", "F")
    if full_matrix()
    else ("Load", "A", "C", "E")
)


@pytest.mark.parametrize("index_name", INDEXES)
@pytest.mark.parametrize("dataset", DATASETS)
def test_load_throughput(benchmark, index_name, dataset, bench_scale):
    """One Figure 8(a) cell: pure-insert throughput."""
    keys = generate(dataset, bench_scale.n_keys, bench_scale.seed)
    spec = make_workload("Load")

    def target():
        adapter = make_adapter(index_name, bench_scale.dytis_config())
        return run_ycsb(adapter, spec, keys, bench_scale.n_ops,
                        seed=bench_scale.seed)

    result = benchmark.pedantic(target, rounds=2, iterations=1)
    benchmark.extra_info["mops"] = result.mops


@pytest.mark.parametrize("index_name", INDEXES)
@pytest.mark.parametrize("dataset", DATASETS)
def test_read_throughput(benchmark, index_name, dataset, bench_scale):
    """One Figure 8(d) cell: pure-read (workload C) throughput."""
    keys = generate(dataset, bench_scale.n_keys, bench_scale.seed)
    spec = make_workload("C")

    def target():
        adapter = make_adapter(index_name, bench_scale.dytis_config())
        return run_ycsb(adapter, spec, keys, bench_scale.n_ops,
                        seed=bench_scale.seed)

    result = benchmark.pedantic(target, rounds=2, iterations=1)
    benchmark.extra_info["mops"] = result.mops


def test_fig8_report(benchmark, bench_scale, record_table):
    """Regenerate the full Figure 8 table and check its headline shapes."""
    rows = benchmark.pedantic(
        fig8_ycsb.run,
        kwargs=dict(scale=bench_scale, indexes=INDEXES,
                    workloads=WORKLOADS, datasets=DATASETS, rounds=2),
        rounds=1,
        iterations=1,
    )
    record_table(
        "fig8_ycsb",
        fig8_ycsb.format_table(rows) + "\n\n" + fig8_ycsb.format_chart(rows),
    )
    cell = {(r.dataset, r.workload, r.index): r.mops for r in rows}
    # Paper claim 3 (§4.3): 'DyTIS shows better insertion performance
    # than ALEX for more dynamic datasets' -- strongest on high-KDD TX.
    assert cell[("TX", "Load", "DyTIS")] > 1.5 * cell[("TX", "Load", "ALEX-10")]
    if "RM" in DATASETS:
        assert (
            cell[("RM", "Load", "DyTIS")] > 0.8 * cell[("RM", "Load", "ALEX-10")]
        )
    for ds in DATASETS:
        # ALEX-70's heavier bulk-built structure loads slower (Fig 8a).
        assert cell[(ds, "Load", "DyTIS")] > 1.3 * cell[(ds, "Load", "ALEX-70")]
        # Reads and scans: DyTIS above ALEX and far above XIndex on E.
        assert cell[(ds, "C", "DyTIS")] > 0.9 * cell[(ds, "C", "ALEX-10")]
        assert cell[(ds, "E", "DyTIS")] > cell[(ds, "E", "XIndex")]
        # DyTIS at least matches XIndex on reads (paper: clearly above).
        assert cell[(ds, "C", "DyTIS")] > 0.8 * cell[(ds, "C", "XIndex")]
