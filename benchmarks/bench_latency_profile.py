"""Latency-distribution shapes behind Table 2 (structural-op tails).

Shape: DyTIS's Load latency is multi-modal on the high-skew dataset
(fast inserts + a remapping tail decades above); the structural tail is
visible for ALEX too (retraining).
"""

from repro.bench.experiments import latency_profile


def test_latency_profile(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        latency_profile.run, kwargs=dict(scale=bench_scale), rounds=1,
        iterations=1,
    )
    record_table("latency_profile", latency_profile.format_table(rows))
    by_ix = {r.index: r for r in rows}
    # DyTIS's structural tail forms a separated slow mode.
    assert by_ix["DyTIS"].modes >= 2
    # The histograms cover every sample.
    for r in rows:
        assert r.histogram.n > 0
