"""§4.3 Groups 2/3: shuffled and simple datasets.

Paper shapes: on shuffled Group-2 datasets DyTIS remains the top
non-B+-tree index; on Uniform the gap to ALEX-10 narrows (ALEX's sweet
spot); scans (E) keep working everywhere.
"""

from repro.bench.experiments import group23


def test_group23(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        group23.run, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_table("group23", group23.format_table(rows))
    cell = {(r.dataset, r.workload, r.index): r.mops for r in rows}
    datasets = ("MM(s)", "RM(s)", "TX(s)", "uniform", "longlat")
    # DyTIS leads ALEX-10 on the mixed A workload across the group --
    # majority of datasets, never losing badly (the paper itself has
    # ALEX-10 18.6% ahead on Uniform, its sweet spot).
    wins = sum(
        cell[(ds, "A", "DyTIS")] > cell[(ds, "A", "ALEX-10")] for ds in datasets
    )
    assert wins >= 3
    for ds in datasets:
        assert cell[(ds, "A", "DyTIS")] > 0.7 * cell[(ds, "A", "ALEX-10")]
        # Scans work on all datasets.
        assert cell[(ds, "E", "DyTIS")] > 0
