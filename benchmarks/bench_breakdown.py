"""§4.3 insertion breakdown: time share per structure operation.

Paper shapes: remapping dominates for the high-skew RM/RL; TX spends
large shares on both remapping and expansion.
"""

from conftest import full_matrix
from repro.bench.experiments import breakdown

DATASETS = ("MM", "ML", "RM", "RL", "TX") if full_matrix() else ("MM", "RM", "TX")


def test_breakdown(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        breakdown.run,
        kwargs=dict(scale=bench_scale, datasets=DATASETS),
        rounds=1,
        iterations=1,
    )
    record_table("breakdown", breakdown.format_table(rows))
    by_ds = {r.dataset: r for r in rows}
    # High-skew review data leans on remapping (paper §4.3).
    assert by_ds["RM"].remap_share > by_ds["RM"].doubling_share
    assert by_ds["RM"].remap_share > by_ds["MM"].remap_share
