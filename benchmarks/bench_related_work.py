"""§5 related work: DyTIS vs LIPP-like vs static RMI vs ALEX-70.

Shapes: the RMI serves reads but is static (no insert column); LIPP's
precise-position lookups work but its node count balloons versus
DyTIS's segment count on skewed data (the paper's footnote-6 memory
story, bounded here by conflict-triggered rebuilds).
"""

from repro.bench.experiments import related_work


def test_related_work(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        related_work.run, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_table("related_work", related_work.format_table(rows))
    cell = {(r.dataset, r.index): r for r in rows}
    for ds in ("MM", "RM", "TX"):
        assert cell[(ds, "RMI")].insert_mops == 0.0  # static by design
        assert cell[(ds, "RMI")].search_mops > 0
        assert cell[(ds, "DyTIS")].insert_mops > 0
        # LIPP grows far more nodes than DyTIS grows segments.
        assert (
            cell[(ds, "LIPP")].structure_nodes
            > cell[(ds, "DyTIS")].structure_nodes
        )
