"""§4.3 memory usage: deep size per index after loading.

Paper shapes: ALEX and the B+-tree use ~20-30% less memory than DyTIS
(partially-filled fixed buckets); XIndex uses far more (delta indexes).
"""

from conftest import full_matrix
from repro.bench.experiments import memory_usage

DATASETS = ("MM", "RM", "TX") if not full_matrix() else ("MM", "ML", "RM", "RL", "TX")


def test_memory_usage(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        memory_usage.run,
        kwargs=dict(scale=bench_scale, datasets=DATASETS),
        rounds=1,
        iterations=1,
    )
    record_table("memory_usage", memory_usage.format_table(rows))
    cell = {(r.dataset, r.index): r for r in rows}
    for ds in DATASETS:
        assert cell[(ds, "DyTIS")].bytes_used > 0
        # DyTIS never undercuts the B+-tree: partially filled fixed
        # buckets cost memory (the paper's 'DyTIS uses more memory').
        assert (
            cell[(ds, "DyTIS")].bytes_used
            > 0.8 * cell[(ds, "B+-tree")].bytes_used
        )
    # The gap is widest on the high-skewness dataset (remapped segments
    # carry the most slack).
    if "RM" in DATASETS:
        assert (
            cell[("RM", "DyTIS")].bytes_used
            > 1.5 * cell[("RM", "B+-tree")].bytes_used
        )
