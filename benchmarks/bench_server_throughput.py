"""Server throughput: read coalescing vs the naive request/reply loop.

Sweeps connection count on read-heavy YCSB-C with pipelined clients
(window 64) against two servers over the same store and dataset: the
coalescing server (pipelined point gets drained into ``get_many``
batches against the fused read column, replies written one batch per
connection) and the naive baseline (``coalesce=False``: execute one
request, write one reply, flush).

The acceptance bar from ISSUE 7 -- coalescing >= 2x naive at >= 16
connections -- is asserted at >= 50k keys where the batch calls
dominate fixed overheads (same convention as bench_storage_engines);
the default smoke scale asserts a weaker always-winning floor.
"""

import asyncio
import gc
import os
from dataclasses import dataclass
from typing import List

from repro.server import ServerConfig, ServerThread
from repro.server.loadgen import run_load

CONNS = (1, 4, 16)
PIPELINE = 64
#: Shard-process counts for the sharded-store rows (1 = the
#: single-process router baseline the speedup is measured against).
SHARDS = (1, 4)


@dataclass
class Row:
    conns: int
    naive_rps: float
    coalesced_rps: float
    mean_batch: float

    @property
    def speedup(self) -> float:
        return self.coalesced_rps / self.naive_rps if self.naive_rps else 0.0


def _measure(
    coalesce: bool, conns: int, scale, trials: int = 3, store_factory=None
):
    """Best-of-``trials`` req/s: scheduling noise on shared cores is
    one-sided (a slow trial means interference, not a faster server).
    GC is disabled for the run -- collector pauses inside a sub-second
    measurement window otherwise dominate the variance."""
    config = ServerConfig(coalesce=coalesce, max_batch=PIPELINE * conns)
    best = (0.0, 0.0)
    for _ in range(trials):
        store = store_factory() if store_factory is not None else None
        with ServerThread(store, config=config) as st:
            gc.collect()
            gc.disable()
            try:
                report = asyncio.run(
                    run_load(
                        st.host,
                        st.port,
                        workload="C",
                        n_conns=conns,
                        n_keys=scale.n_keys,
                        n_ops=max(8000, 2 * scale.n_ops),
                        pipeline=PIPELINE,
                        seed=scale.seed,
                    )
                )
            finally:
                gc.enable()
            assert report.n_errors == 0
            rps = report.throughput
            if rps > best[0]:
                best = (rps, st.server.metrics.mean_batch_size("get"))
    return best


def run(scale) -> List[Row]:
    rows = []
    for conns in CONNS:
        naive_rps, _ = _measure(False, conns, scale)
        coalesced_rps, mean_batch = _measure(True, conns, scale)
        rows.append(Row(conns, naive_rps, coalesced_rps, mean_batch))
    return rows


def format_table(rows: List[Row]) -> str:
    lines = [
        "Server throughput, YCSB-C, pipelined clients (window "
        f"{PIPELINE}), req/s",
        f"{'conns':>5}  {'naive':>12}  {'coalesced':>12}  "
        f"{'speedup':>7}  {'mean batch':>10}",
    ]
    for r in rows:
        lines.append(
            f"{r.conns:>5}  {r.naive_rps:>12,.0f}  {r.coalesced_rps:>12,.0f}"
            f"  {r.speedup:>6.2f}x  {r.mean_batch:>10.1f}"
        )
    return "\n".join(lines)


# -- sharded store rows ----------------------------------------------------


def _sharded_store(n_shards: int):
    from repro.kvstore import KVStore
    from repro.shard import ShardedIndex

    return KVStore(index=ShardedIndex(n_shards, mode="hash"))


@dataclass
class ShardedRow:
    shards: int
    rps: float
    mean_batch: float


def run_sharded(scale, shard_counts=SHARDS) -> List[ShardedRow]:
    """Coalescing server over a multi-process ShardedIndex store.

    Same pipelined YCSB-C drive as the main sweep at the largest
    fan-in; the coalescer's ``get_many`` batches scatter across the
    shard fleet (or are answered zero-copy from the shared-memory
    columns), so worker processes absorb index work the single-process
    rows pay on the event-loop thread.
    """
    rows = []
    for n_shards in shard_counts:
        rps, mean_batch = _measure(
            True, max(CONNS), scale,
            store_factory=lambda: _sharded_store(n_shards),
        )
        rows.append(ShardedRow(n_shards, rps, mean_batch))
    return rows


def format_sharded_table(rows: List[ShardedRow]) -> str:
    lines = [
        "Sharded-store server throughput, YCSB-C, "
        f"{max(CONNS)} conns (window {PIPELINE}), req/s",
        f"{'shards':>6}  {'req/s':>12}  {'mean batch':>10}",
    ]
    for r in rows:
        lines.append(
            f"{r.shards:>6}  {r.rps:>12,.0f}  {r.mean_batch:>10.1f}"
        )
    return "\n".join(lines)


def test_server_throughput(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        run, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_table("server_throughput", format_table(rows))
    by_conns = {r.conns: r for r in rows}

    # Coalescing must actually batch once there is concurrency to mine.
    assert by_conns[16].mean_batch > 1.5
    # It must never lose, at any scale or fan-in.
    for r in rows:
        assert r.speedup >= 0.8, (r.conns, r.speedup)
    # Pipelined readers at fan-in: smoke floor, full bar at stable scale.
    assert by_conns[16].speedup >= 1.2
    if bench_scale.n_keys >= 50_000:
        assert by_conns[16].speedup >= 2.0  # ISSUE 7 acceptance bar


def test_server_throughput_sharded(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        run_sharded, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_table("server_throughput_sharded", format_sharded_table(rows))
    by_shards = {r.shards: r for r in rows}
    for r in rows:
        assert r.rps > 0
    # Multi-core gain needs multiple cores; on fewer the row just has
    # to stay in the same league as the single-process router (control
    # channel overhead bounded), matching the fig12 gating convention.
    speedup = by_shards[4].rps / by_shards[1].rps
    if (os.cpu_count() or 1) >= 4 and bench_scale.n_keys >= 50_000:
        assert speedup >= 1.5, f"4-shard server gave {speedup:.2f}x"
    else:
        assert speedup >= 0.3, f"4-shard server collapsed to {speedup:.2f}x"
