"""Figure 11: influence of KDD and skewness on the indexes.

Paper shapes: (a) inserts benefit from the spatial locality of the
original (high-KDD) streams -- TX shows the largest gain; B+-tree search
is KDD-insensitive.  (b) B+-tree is skewness-insensitive; DyTIS degrades
with high skewness (RM/RL) but stays robust at low skewness (MM/ML).
"""

from conftest import full_matrix
from repro.bench.experiments import fig11_dynamic

DATASETS = ("MM", "ML", "RM", "RL", "TX") if full_matrix() else ("MM", "RM", "TX")


def test_fig11_dynamic(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        fig11_dynamic.run,
        kwargs=dict(scale=bench_scale, datasets=DATASETS),
        rounds=1,
        iterations=1,
    )
    record_table("fig11_dynamic", fig11_dynamic.format_table(rows))
    cell = {(r.panel, r.dataset, r.index, r.operation): r.ratio for r in rows}
    # (b) B+-tree is insensitive to skewness (ratio ≈ 1, paper's point 1);
    # wide band because single-round Python timings jitter.
    for ds in DATASETS:
        assert 0.35 < cell[("skewness", ds, "B+-tree", "insert")] < 2.5
    # (b) DyTIS is robust to low skewness (MM) but pays for high (RM/RL).
    if "MM" in DATASETS and "RM" in DATASETS:
        assert (
            cell[("skewness", "MM", "DyTIS", "insert")]
            > cell[("skewness", "RM", "DyTIS", "insert")]
        )
    # (a) The paper's KDD insert benefit (339% for TX) comes from CPU
    # cache locality, which pure Python cannot exhibit; we assert only
    # that search is not strongly KDD-sensitive for the B+-tree.
    for ds in DATASETS:
        assert 0.4 < cell[("kdd", ds, "B+-tree", "search")] < 2.5
    # (b) point 3 in its substrate-independent form: under skew ALEX
    # multiplies *nodes* far faster than DyTIS multiplies segments
    # (paper: 1341x vs 17x vs the Uniform baseline).
    growth = {
        (g.dataset, g.index): g.growth
        for g in fig11_dynamic.structure_growth(bench_scale, datasets=("RM",))
    }
    assert growth[("RM", "ALEX-10")] > 2 * growth[("RM", "DyTIS")]
