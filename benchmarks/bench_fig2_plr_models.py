"""Figure 2: PLR model counts per window (variance of skewness visual).

Paper shape: Map-M needs few models, Taxi a moderate number, Review-L
many (2 / 8 / 24 in the paper's windows); Uniform needs exactly one.
"""

from repro.bench.experiments import fig2_plr


def test_fig2_plr_models(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        fig2_plr.run, args=(bench_scale,), rounds=1, iterations=1
    )
    record_table("fig2_plr_models", fig2_plr.format_table(rows))
    by_name = {r.dataset: r.mean_models for r in rows}
    assert by_name["uniform"] == 1.0
    assert by_name["MM"] < by_name["TX"] < by_name["RL"]
