"""Figure 3: consecutive sub-dataset histograms (KDD visual).

Paper shape: Review-L's three consecutive windows are virtually
identical; Taxi's differ 'even to the naked eye'.
"""

from repro.bench.experiments import fig3_kdd


def test_fig3_kdd(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        fig3_kdd.run, args=(bench_scale,), rounds=1, iterations=1
    )
    record_table("fig3_kdd", fig3_kdd.format_table(rows))
    by_name = {r.dataset: r for r in rows}
    assert max(by_name["RL"].pairwise_kl) < min(by_name["TX"].pairwise_kl)
