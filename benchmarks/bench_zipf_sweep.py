"""Request-skew sweep: paper §4.3's 'results similar with uniform' claim.

Shape: the index ordering for workload C is stable across request
distributions from uniform to strongly Zipfian.
"""

from repro.bench.experiments import zipf_sweep


def test_zipf_sweep(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        zipf_sweep.run, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_table("zipf_sweep", zipf_sweep.format_table(rows))
    cell = {(r.index, r.theta): r.read_mops for r in rows}
    for theta in ("uniform", "0.5", "0.99", "1.2"):
        # DyTIS above ALEX-70 and XIndex at every request skew.
        assert cell[("DyTIS", theta)] > cell[("ALEX-70", theta)]
        assert cell[("DyTIS", theta)] > 0.8 * cell[("XIndex", theta)]