"""Adversarial workload gauntlet (RoBin-style robustness check).

Two claims are pinned here:

- **Bulk-fraction sweep**: the index survives adversarial insert
  orders at every bulk-load fraction (0/50/100% preloaded) -- in
  particular ``interleaved_runs``, whose dense runs used to drive the
  bottom-up planner's grow loop out of memory before
  ``build_segment_tree`` learned to split unfittable groups deeper.
  Full-bulk interleaved runs build a multi-million-bucket structure
  (correct but slow), so that cell only runs under ``REPRO_BENCH_FULL``.

- **Drift repair**: on a decaying shifting hotspot, the maintenance
  controller fires, lowers hot-path probe depth, and wins back at
  least 30% of the throughput the drifted index lost versus a fresh
  bulk load of identical contents.  Structure and depth are
  deterministic for the pinned seed; only the throughput ratio
  carries machine noise (hence interleaved median rounds in the
  driver and the one-sided 0.3 bound here).
"""

from conftest import full_matrix

from repro.bench.experiments import gauntlet


def test_gauntlet_bulk_fraction(benchmark, bench_scale, record_table):
    orders = ["reverse_sorted", "shifting_hotspot"]
    fractions = (0.0, 0.5, 1.0)
    rows = benchmark.pedantic(
        gauntlet.run_bulk_fraction,
        kwargs=dict(scale=bench_scale, orders=orders, fractions=fractions),
        rounds=1,
        iterations=1,
    )
    # Dense interleaved runs: incremental-only by default (the 100%
    # bulk build is minutes-slow at its forced bucket count).
    runs_fractions = fractions if full_matrix() else (0.0,)
    rows += gauntlet.run_bulk_fraction(
        scale=bench_scale, orders=["interleaved_runs"], fractions=runs_fractions
    )
    record_table("gauntlet_sweep", gauntlet.format_sweep_table(rows))
    assert len(rows) == len(orders) * len(fractions) + len(runs_fractions)
    # Every adversarial cell completes and serves reads.
    assert all(r.mixed_kops > 0 for r in rows)
    assert all(r.mean_probe_depth > 0 for r in rows)


def test_gauntlet_drift_repair(benchmark, record_table):
    res = benchmark.pedantic(gauntlet.run_drift, rounds=1, iterations=1)
    record_table("gauntlet_drift", gauntlet.format_drift_table(res))
    # Maintenance fired, and on the repaired index the hot read path
    # probes strictly no deeper than on the drifted one.
    assert res.events >= 1
    assert res.depth_on <= res.depth_off
    # Drift cost real throughput, and maintenance recovered >=30% of it.
    assert res.lost > 0
    assert res.recovered_fraction >= 0.30
