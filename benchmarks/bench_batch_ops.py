"""Batch-operation micro-benchmark: get_many / insert_many speedups.

The batch layer sorts each batch and caches per-segment routing state,
so larger batches amortise more directory/remap work per key.  On the
columnar engine ``insert_many`` dispatches per segment group: dense
groups get one planned splice per touched bucket, sparse groups an
inline C-bisect loop that still reuses the group's routing.

Measured ceiling, worth stating up front: the columnar engine's
*scalar* insert is already a C ``bisect`` plus an ``array`` slice copy
(~0.5us/key at the store layer), and fresh-insert workloads spend
roughly 40% of wall time in Algorithm 1 restructures that cost the
same whether keys arrive one at a time or batched.  Batching therefore
buys ~1.2-1.5x on columnar writes (routing amortisation only), not the
3x the lists engine shows against its slower per-key loop -- the big
columnar batch wins are on reads (get_many 3-4x) and on batched index
*builds* (see ``test_bulk_vs_batch_build``).  The asserts below pin
those measured levels so write-path regressions fail loudly.
"""

import os

import pytest

from repro.bench.experiments import batch_ops

BATCH_SIZES = (64, 256, 1024, 4096)

_BENCH_N = int(os.environ.get("REPRO_BENCH_N", "8000"))


@pytest.mark.parametrize("storage", ["lists", "columnar"])
def test_batch_ops(benchmark, bench_scale, record_table, storage):
    rows = benchmark.pedantic(
        batch_ops.run,
        kwargs=dict(
            scale=bench_scale, batch_sizes=BATCH_SIZES, storage=storage
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        f"batch_ops_{storage}",
        f"[storage={storage}]\n" + batch_ops.format_table(rows),
    )
    # Batching should never lose badly at any size (small sizes carry
    # sort/convert overhead; allow slack for timing noise at tiny scale).
    assert all(r.speedup > 0.5 for r in rows)
    at_1024 = {r.op: r for r in rows if r.batch_size == 1024}
    if storage == "columnar":
        # CI smoke bar: the batched write path must not lose to the
        # scalar insert loop (pre-splice baseline was 0.33x here).  At
        # tiny smoke scales the cell doubles the index, so restructure
        # cost -- identical either way -- dominates both sides; 0.7
        # keeps the regression guard without chasing that noise.
        assert at_1024["insert_many"].speedup >= 0.7
        assert at_1024["get_many"].speedup >= 1.5
    if _BENCH_N >= 8000:
        assert at_1024["get_many"].speedup >= 1.2
        assert at_1024["insert_many"].speedup >= 1.0


def test_bulk_vs_batch_build(benchmark, bench_scale, record_table):
    def both():
        return [
            batch_ops.bulk_compare(scale=bench_scale, storage=storage)
            for storage in ("lists", "columnar")
        ]

    rows = benchmark.pedantic(both, rounds=1, iterations=1)
    record_table("bulk_vs_batch", batch_ops.format_bulk_compare(rows))
    columnar = rows[1]
    assert columnar.batch_keys_per_s > 0
    if _BENCH_N >= 100_000:
        # Full-scale acceptance bar: batched online build within ~2x of
        # the offline bulk build.
        assert columnar.ratio <= 2.0
