"""Batch-operation micro-benchmark: get_many / insert_many speedups.

The batch layer sorts each batch and caches per-segment routing state,
so larger batches amortise more directory/remap work per key.  Expected
shape: speedup >= 1 at every size and growing with the batch size; the
acceptance bar from the issue (>=1.5x at batch 1024) is asserted only
at full scale where timings are stable.
"""

import os

from repro.bench.experiments import batch_ops

BATCH_SIZES = (64, 256, 1024, 4096)


def test_batch_ops(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        batch_ops.run,
        kwargs=dict(scale=bench_scale, batch_sizes=BATCH_SIZES),
        rounds=1,
        iterations=1,
    )
    record_table("batch_ops", batch_ops.format_table(rows))
    # Batching should never lose badly at any size (small sizes carry
    # sort/convert overhead; allow slack for timing noise at tiny scale).
    assert all(r.speedup > 0.5 for r in rows)
    at_1024 = {r.op: r for r in rows if r.batch_size == 1024}
    if int(os.environ.get("REPRO_BENCH_N", "8000")) >= 8000:
        assert at_1024["get_many"].speedup >= 1.2
        assert at_1024["insert_many"].speedup >= 1.2
