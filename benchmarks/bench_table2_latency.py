"""Table 2: average / p99 / p99.99 latencies for Load and YCSB-A.

Paper shapes: DyTIS beats ALEX on the dynamic datasets for Load;
ALEX's p99.99 tail (retraining spikes) is a multiple of DyTIS's
(remapping spikes); the B+-tree has the calmest Load tail.
"""

from conftest import full_matrix
from repro.bench.experiments import table2_latency

DATASETS = ("MM", "ML", "RM", "RL", "TX") if full_matrix() else ("RM", "TX")
INDEXES = ("DyTIS", "ALEX-10", "ALEX-70", "XIndex", "B+-tree")


def test_table2_latency(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        table2_latency.run,
        kwargs=dict(scale=bench_scale, datasets=DATASETS, indexes=INDEXES),
        rounds=1,
        iterations=1,
    )
    record_table("table2_latency", table2_latency.format_table(rows))
    cell = {(r.dataset, r.workload, r.index): r.latency for r in rows}
    for ds in DATASETS:
        lat = cell[(ds, "Load", "DyTIS")]
        assert lat.p9999_ns >= lat.p99_ns >= lat.avg_ns * 0.1
        # Structure-maintenance spikes dominate the extreme tail.
        assert lat.p9999_ns > 2 * lat.p99_ns
