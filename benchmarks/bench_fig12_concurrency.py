"""Figure 12: thread scaling, DyTIS vs XIndex (RL and TX).

Paper shape: DyTIS above XIndex at every thread count for insert,
search, and scan.  CPython's GIL flattens absolute scaling (documented
in EXPERIMENTS.md); the cross-index ordering is the reproducible part.
"""

from repro.bench.experiments import fig12_concurrency


def test_fig12_concurrency(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        fig12_concurrency.run,
        kwargs=dict(scale=bench_scale, datasets=("RL", "TX"),
                    thread_counts=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    record_table("fig12_concurrency", fig12_concurrency.format_table(rows))
    cell = {(r.dataset, r.index, r.operation, r.threads): r.mops for r in rows}
    # DyTIS > XIndex for search at every thread count (paper's headline).
    for ds in ("RL", "TX"):
        for t in (1, 2, 4, 8):
            assert cell[(ds, "DyTIS-MT", "search", t)] > 0
            assert cell[(ds, "XIndex", "search", t)] > 0
