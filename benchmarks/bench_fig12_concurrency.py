"""Figure 12: thread scaling, DyTIS vs XIndex (RL and TX), plus the
process-scaling comparison the threaded rows motivate.

Paper shape: DyTIS above XIndex at every thread count for insert,
search, and scan.  CPython's GIL flattens absolute thread scaling
(documented in EXPERIMENTS.md, and now visible at a glance in the
scaling-efficiency block of the recorded table); the cross-index
ordering is the reproducible part.  The process-scaling test runs the
same mixed batch trace through N shard *processes*
(``repro.shard.ShardedIndex``) against N threads on the two-level
locking wrapper -- the acceptance bar (>= 2.5x at 4 shard processes
vs the 1-process baseline, threads ~1x) applies where it is
physically meaningful: >= 4 cores and >= 50k keys.  The default smoke
scale asserts only that every configuration completes with nonzero
throughput.
"""

import os

from repro.bench.experiments import fig12_concurrency


def test_fig12_concurrency(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        fig12_concurrency.run,
        kwargs=dict(scale=bench_scale, datasets=("RL", "TX"),
                    thread_counts=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    record_table("fig12_concurrency", fig12_concurrency.format_table(rows))
    cell = {(r.dataset, r.index, r.operation, r.threads): r.mops for r in rows}
    # DyTIS > XIndex for search at every thread count (paper's headline).
    for ds in ("RL", "TX"):
        for t in (1, 2, 4, 8):
            assert cell[(ds, "DyTIS-MT", "search", t)] > 0
            assert cell[(ds, "XIndex", "search", t)] > 0
    # Efficiency is reported for every multi-thread row and is bounded:
    # a 1-worker baseline of 1.0, and no super-linear artifacts beyond
    # timer noise.
    eff = fig12_concurrency.scaling_efficiency(rows)
    for ds in ("RL", "TX"):
        for op in fig12_concurrency.OPERATIONS:
            assert eff[(ds, "DyTIS-MT", op, 1)] == 1.0
            for t in (2, 4, 8):
                assert 0.0 < eff[(ds, "DyTIS-MT", op, t)] < 2.0


def test_fig12_process_scaling(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        fig12_concurrency.run_process_scaling,
        kwargs=dict(scale=bench_scale, worker_counts=(1, 2, 4)),
        rounds=1,
        iterations=1,
    )
    record_table(
        "fig12_process_scaling", fig12_concurrency.format_table(rows)
    )
    cell = {(r.index, r.threads): r.mops for r in rows}
    for ix in ("DyTIS-MT", "Sharded"):
        for w in (1, 2, 4):
            assert cell[(ix, w)] > 0
    # The acceptance bar needs real cores and enough work per RPC to
    # amortize the control channel; below that, only completion and
    # the recorded table are asserted (same gating convention as
    # bench_server_throughput).
    if (os.cpu_count() or 1) >= 4 and bench_scale.n_keys >= 50_000:
        speedup = cell[("Sharded", 4)] / cell[("Sharded", 1)]
        assert speedup >= 2.5, (
            f"4 shard processes gave {speedup:.2f}x over 1 "
            f"(expected >= 2.5x on >= 4 cores)"
        )
        threaded = cell[("DyTIS-MT", 4)] / cell[("DyTIS-MT", 1)]
        assert threaded < 2.0, (
            f"threaded control scaled {threaded:.2f}x -- GIL assumption broken?"
        )
