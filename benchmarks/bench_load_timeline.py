"""Load-phase timeline ablation (companion to Figure 8a / §4.3).

Shape: DyTIS's structure activity is spread across the whole Load phase
(it adapts continuously); ALEX-70's non-bulk tail is uniformly slow
(every insert fights the bulk-built structure).
"""

from repro.bench.experiments import load_timeline


def test_load_timeline(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        load_timeline.run, kwargs=dict(scale=bench_scale), rounds=1, iterations=1
    )
    record_table("load_timeline", load_timeline.format_table(rows))
    dytis = [r for r in rows if r.index == "DyTIS"]
    alex = [r for r in rows if r.index == "ALEX-70"]
    # DyTIS adapts throughout: structural work in most deciles.
    active = sum(1 for r in dytis if r.structural_ops > 0)
    assert active >= len(dytis) // 2
    # And its per-decile throughput beats ALEX-70's almost everywhere
    # (tolerate one noisy decile on a loaded machine).
    wins = sum(1 for d, a in zip(dytis, alex) if d.mops > a.mops)
    assert wins >= len(dytis) - 1
