"""§4.3 parameter study: B_size, L_start, R, U_t, Limit_seg sweeps.

Regenerates the paper's parameter-effect numbers (insert/search/scan
throughput normalized to the default configuration, averaged over
datasets).  The paper reports single-digit to low-double-digit percent
effects in both directions; the shape check is that the sweeps run and
the normalized values stay within a sane band.
"""

from conftest import full_matrix
from repro.bench.experiments import params_ablation

PARAMS = tuple(params_ablation.SWEEPS) if full_matrix() else (
    "bucket_capacity",
    "util_threshold",
    "seg_limit_boost",
)


def test_params_ablation(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        params_ablation.run,
        kwargs=dict(scale=bench_scale, datasets=("MM", "RM", "TX"),
                    parameters=PARAMS),
        rounds=1,
        iterations=1,
    )
    record_table("params_ablation", params_ablation.format_table(rows))
    for r in rows:
        assert 0.05 < r.normalized_insert < 20.0
        assert 0.05 < r.normalized_search < 20.0
