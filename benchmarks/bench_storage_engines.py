"""Storage-engine benchmark: list-of-buckets vs columnar segments.

Both engines run the identical MM workload; the columnar engine's
structure-of-arrays buckets should win clearly on the vectorised batch
and scan paths while staying within noise on scalar inserts (its slack
shifts are array-slice copies instead of ``list.insert``).  The hard
acceptance bars from the issue (>= 2x on get_many[1024] and scan_range,
scalar insert within 10%) are asserted only at >= 50k keys where the
vectorised paths dominate fixed overheads and timings are stable; the
default smoke scale just sanity-checks that columnar is not losing
badly anywhere.
"""

from repro.bench.experiments import storage_engines


def test_storage_engines(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        storage_engines.run,
        kwargs=dict(scale=bench_scale, dataset="MM", batch_size=1024),
        rounds=1,
        iterations=1,
    )
    record_table("storage_engines", storage_engines.format_table(rows))
    by_op = {r.op: r for r in rows}

    # The vectorised paths must never lose, even at smoke scale.
    assert by_op["get_many[1024]"].speedup >= 1.0
    assert by_op["scan_range"].speedup >= 1.0
    # The batched write path: columnar fresh-insert batches run at
    # ~0.7x of the list engine (``list.insert`` on small ref lists is
    # hard to beat, and splits rebuild real arrays); the batch-path
    # wins are against columnar's own scalar loop and on every read
    # cell.  Pre-splice this cell was 0.58x and regressing further
    # should fail loudly.  The workload doubles the index, so the cell
    # is restructure-heavy and noisy (0.4-0.7x across scales and runs);
    # only catastrophic floors are asserted here -- the tight batch-vs-
    # scalar write bars live in bench_batch_ops where both sides run
    # the same engine.
    assert by_op["insert_many[1024]"].speedup >= 0.35
    if bench_scale.n_keys >= 8000:
        assert by_op["insert_many[1024]"].speedup >= 0.5
    # Mixed read/write (YCSB-A): incremental fused-column repair keeps
    # reads vectorised between updates instead of rebuilding the column
    # after every write.
    assert by_op["ycsb_a[mixed]"].speedup >= 0.8
    # Scalar paths: generous noise floor at any scale.
    assert by_op["get"].speedup >= 0.5
    assert by_op["insert"].speedup >= 0.5
    # Unboxed uint64 keys should always shrink resident storage.
    assert by_op["memory_mib"].speedup > 1.0

    if bench_scale.n_keys >= 50_000:
        # Issue acceptance bars, measured where timings are stable.
        assert by_op["get_many[1024]"].speedup >= 2.0
        assert by_op["scan_range"].speedup >= 2.0
        assert by_op["insert"].speedup >= 0.9  # no >10% scalar regression
