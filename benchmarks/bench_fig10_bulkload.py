"""Figure 10: ALEX throughput over bulk-loading percentages.

Paper shape: no regularity -- more bulk loading is not reliably better;
the spread across percentages reaches tens of percent per workload.
"""

from conftest import full_matrix
from repro.bench.experiments import fig10_bulkload

DATASETS = ("MM", "ML", "RM", "RL", "TX") if full_matrix() else ("MM", "RM", "TX")
WORKLOADS = (
    ("Load", "A", "B", "C", "D'", "E", "F") if full_matrix() else ("Load", "A", "C")
)


def test_fig10_bulkload(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        fig10_bulkload.run,
        kwargs=dict(scale=bench_scale, datasets=DATASETS, workloads=WORKLOADS),
        rounds=1,
        iterations=1,
    )
    record_table("fig10_bulkload", fig10_bulkload.format_table(rows))
    # Shape: normalized values spread on both sides of 1.0 somewhere --
    # the paper's 'no regularity between load size and performance'.
    normalized = [r.normalized for r in rows if r.index != "ALEX-10"]
    assert any(v > 1.0 for v in normalized)
    assert any(v < 1.0 for v in normalized)
    # Structural corollary (§4.3): heavier bulk loading builds bigger,
    # at-least-as-deep structures that persist.
    structure = {
        s.index: s for s in fig10_bulkload.bulk_structure(bench_scale)
    }
    assert structure["ALEX-90"].nodes > structure["ALEX-10"].nodes
    assert structure["ALEX-90"].depth >= structure["ALEX-10"].depth


def test_dytis_bulk_vs_insert(benchmark, bench_scale, record_table):
    """DyTIS bottom-up bulk load vs. replaying Algorithm 1 key by key."""
    rows = benchmark.pedantic(
        fig10_bulkload.dytis_bulk_vs_insert,
        kwargs=dict(scale=bench_scale, datasets=DATASETS),
        rounds=1,
        iterations=1,
    )
    record_table(
        "dytis_bulk_vs_insert", fig10_bulkload.format_dytis_table(rows)
    )
    # The bottom-up build must be observationally equivalent...
    assert all(r.probes_match for r in rows)
    # ...and faster than sequential insertion on every dataset.  (At the
    # acceptance scale of 100k MM keys the measured speedup is ~8x; the
    # bound here stays loose so small smoke scales also pass.)
    assert all(r.speedup > 1.5 for r in rows)
