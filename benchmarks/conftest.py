"""Shared fixtures for the benchmark suite.

Every benchmark reads its sizes from ``bench_scale`` (override with the
``REPRO_BENCH_N`` environment variable; default 8000 keys keeps a full
``pytest benchmarks/ --benchmark-only`` run in minutes).  Formatted
result tables -- the reproduced paper figures -- are written to
``benchmarks/results/`` and echoed to stdout (visible with ``-s``).
"""

import os
from pathlib import Path

import pytest

from repro.bench.experiments.scale import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    n = int(os.environ.get("REPRO_BENCH_N", "8000"))
    return ExperimentScale(
        n_keys=n,
        n_ops=max(1000, n // 2),
        metric_window=max(1000, n // 4),
    )


@pytest.fixture(scope="session")
def record_table(bench_scale):
    """Write a reproduced figure/table to benchmarks/results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        stamped = (
            text
            + f"\n[scale: {bench_scale.n_keys:,} keys/dataset, "
            f"{bench_scale.n_ops:,} ops/workload, seed {bench_scale.seed}]"
        )
        (RESULTS_DIR / f"{name}.txt").write_text(stamped + "\n")
        print(f"\n{stamped}\n[written to benchmarks/results/{name}.txt]")

    return _record


def full_matrix() -> bool:
    """REPRO_BENCH_FULL=1 runs the paper's complete dataset×workload grid."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"
