"""Figure 9: DyTIS vs CCEH vs Extendible Hashing.

Paper shapes: DyTIS beats plain EH on insert and search for all
datasets; CCEH beats DyTIS on search (the price of replacing the hash
function with an order-preserving remapping function).
"""

from conftest import full_matrix
from repro.bench.experiments import fig9_hashing

DATASETS = ("MM", "ML", "RM", "RL", "TX") if full_matrix() else ("MM", "RM", "TX")


def test_fig9_hashing(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        fig9_hashing.run,
        kwargs=dict(scale=bench_scale, datasets=DATASETS),
        rounds=1,
        iterations=1,
    )
    record_table(
        "fig9_hashing",
        fig9_hashing.format_table(rows)
        + "\n\n"
        + fig9_hashing.format_chart(rows),
    )
    cell = {(r.dataset, r.index): r for r in rows}
    search_wins = sum(
        cell[(ds, "CCEH")].search_mops > cell[(ds, "DyTIS")].search_mops
        for ds in DATASETS
    )
    assert search_wins >= len(DATASETS) - 1  # CCEH leads point lookups
