"""Observability overhead: instrumented vs. bare insert hot path.

Measures the same random-insert workload on three DyTIS instances --
no collector, a disabled collector (``obs.enabled=False``: the index
drops the reference at construction, so the cost is one ``is not
None`` branch), and an enabled collector (two clock reads plus one
C-level append into the histogram's pending buffer per op) -- and
reports the relative overhead.

Acceptance bar from the issue: enabled-collector insert overhead under
15%.  The asserted ceiling here is looser (interpreter timing at CI
scale is noisy); the measured number is recorded in
``benchmarks/results/obs_overhead.txt``.
"""

import random
import time

from repro.core import DyTIS
from repro.obs import Observability


def _time_inserts(keys, obs):
    index = DyTIS(obs=obs)
    insert = index.insert
    t0 = time.perf_counter()
    for k in keys:
        insert(k, k)
    return time.perf_counter() - t0, index


def run(n=20_000, seed=17, repeats=3):
    rng = random.Random(seed)
    keys = rng.sample(range(1, 1 << 40), n)
    best = {}
    for label, factory in (
        ("bare", lambda: None),
        ("disabled", lambda: Observability(enabled=False)),
        ("enabled", lambda: Observability(enabled=True)),
    ):
        best[label] = min(
            _time_inserts(keys, factory())[0] for _ in range(repeats)
        )
    rows = []
    for label in ("bare", "disabled", "enabled"):
        overhead = best[label] / best["bare"] - 1.0
        rows.append((label, best[label], overhead))
    return rows


def format_table(rows):
    lines = [
        "Observability overhead on the insert hot path (best of repeats)",
        f"{'variant':<10} {'seconds':>9} {'overhead':>9}",
    ]
    for label, secs, overhead in rows:
        lines.append(f"{label:<10} {secs:>9.4f} {overhead:>8.1%}")
    return "\n".join(lines)


def test_obs_overhead(bench_scale, record_table):
    rows = run(n=max(bench_scale.n_keys, 8000))
    record_table("obs_overhead", format_table(rows))
    by = {label: overhead for label, _, overhead in rows}
    # The disabled collector must be within noise of bare, and the
    # enabled collector comfortably cheap; the tight <15% claim is
    # checked on quiet machines and recorded in results/.
    assert by["disabled"] < 0.10
    assert by["enabled"] < 0.40


if __name__ == "__main__":
    print(format_table(run()))
