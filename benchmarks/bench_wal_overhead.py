"""WAL overhead benchmark: fsync policies vs. bare store, + recovery.

Acceptance bar from the durability issue: ``batch`` group commit adds
under 2x overhead against the bare in-memory ``KVStore`` on the insert
workload, and recovering (replaying) the full write log completes and
is timed.  The fsync-heavy ``always`` row is reported for the price
curve but has no bound -- it is dominated by device sync latency, not
by anything this codebase controls.
"""

import os

from repro.bench.experiments import wal_overhead


def test_wal_overhead(benchmark, bench_scale, record_table):
    rows = benchmark.pedantic(
        wal_overhead.run,
        kwargs=dict(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    record_table("wal_overhead", wal_overhead.format_table(rows))
    by_label = {r.label: r for r in rows}
    assert set(by_label) == {
        "bare", "wal/never", "wal/batch", "wal/always",
        "recovery/replay", "checkpoint",
    }
    # Recovery replayed the whole log and made progress.
    replay = by_label["recovery/replay"]
    assert replay.n_ops >= bench_scale.n_keys
    assert replay.seconds > 0
    # The headline bound only holds where timings are stable.
    if int(os.environ.get("REPRO_BENCH_N", "8000")) >= 8000:
        assert by_label["wal/batch"].overhead_x < 2.0, (
            f"batch group commit costs "
            f"{by_label['wal/batch'].overhead_x:.2f}x (bound: 2x)"
        )
